//! Random graph families with controlled sparseness.
//!
//! The paper's guarantees are parameterized by `mad(G)` and arboricity, so
//! the generators here give *certified* sparseness: a union of `a` random
//! forests has arboricity ≤ `a` (hence `mad < 2a`), and the configuration
//! model produces `d`-regular graphs (`mad = d`). All generators are
//! deterministic given the `rand` seed.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A uniformly random labelled tree on `n` vertices (Prüfer sequence).
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_tree_with(&mut rng, n)
}

fn random_tree_with(rng: &mut StdRng, n: usize) -> Graph {
    if n <= 1 {
        return Graph::empty(n);
    }
    if n == 2 {
        return Graph::from_edges(2, [(0, 1)]);
    }
    // Prüfer decoding.
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &v in &prufer {
        degree[v] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    let mut leaf_heap: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&v| degree[v] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &v in &prufer {
        let std::cmp::Reverse(leaf) = leaf_heap.pop().expect("tree invariant");
        edges.push((leaf, v));
        degree[leaf] -= 1;
        degree[v] -= 1;
        if degree[v] == 1 {
            leaf_heap.push(std::cmp::Reverse(v));
        }
    }
    let std::cmp::Reverse(a) = leaf_heap.pop().expect("two leaves remain");
    let std::cmp::Reverse(b) = leaf_heap.pop().expect("two leaves remain");
    edges.push((a, b));
    // Tree edges are unique by construction: skip the builder's global
    // sort + dedup and go straight to CSR (the million-vertex path).
    Graph::from_simple_edges(n, &edges)
}

/// The union of `a` independent random spanning trees on the same vertex
/// set: arboricity ≤ `a` by construction (and usually exactly `a`), so
/// `mad < 2a`. This is the canonical Corollary 1.4 workload.
///
/// # Examples
///
/// ```
/// use graphs::gen::forest_union;
/// let g = forest_union(50, 3, 42);
/// assert!(graphs::arboricity(&g) <= 3);
/// ```
pub fn forest_union(n: usize, a: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..a {
        let t = random_tree_with(&mut rng, n);
        for (u, v) in t.edges() {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Sparse Erdős–Rényi `G(n, m)`: exactly `m` distinct uniform edges
/// (deduplicated; slightly fewer if collisions exhaust retries).
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let max_edges = n * (n - 1) / 2;
    let target = m.min(max_edges);
    let mut chosen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while chosen.len() < target && attempts < 50 * target + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            chosen.insert((u.min(v), u.max(v)));
        }
    }
    for (u, v) in chosen {
        b.add_edge(u, v);
    }
    b.build()
}

/// A random `d`-regular simple graph via the configuration model with
/// restarts. Requires `n·d` even and `d < n`.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    // Configuration model + edge-switching repair: pair stubs uniformly,
    // then repeatedly swap a defective pair (loop or duplicate) with a
    // random pair until simple. Converges fast for d ≪ n.
    let mut stubs: Vec<VertexId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(&mut rng);
    let mut pairs: Vec<(VertexId, VertexId)> = stubs.chunks(2).map(|c| (c[0], c[1])).collect();
    for _sweep in 0..10_000 {
        let mut seen = std::collections::HashSet::new();
        let mut bad: Vec<usize> = Vec::new();
        for (i, &(u, v)) in pairs.iter().enumerate() {
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            return Graph::from_edges(n, pairs);
        }
        for i in bad {
            let j = rng.gen_range(0..pairs.len());
            if i != j {
                let (pi, pj) = (pairs[i], pairs[j]);
                pairs[i] = (pi.0, pj.1);
                pairs[j] = (pj.0, pi.1);
            }
        }
    }
    panic!("configuration model failed to produce a simple {d}-regular graph on {n} vertices");
}

/// A random bipartite graph with parts `a`, `b` and edge probability `p`.
pub fn random_bipartite(a: usize, b: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(a + b);
    for i in 0..a {
        for j in 0..b {
            if rng.gen_bool(p) {
                builder.add_edge(i, a + j);
            }
        }
    }
    builder.build()
}

/// A connected random graph with maximum degree ≤ `max_deg`: random tree
/// plus random extra edges rejected when they would exceed the cap.
pub fn random_bounded_degree(n: usize, max_deg: usize, extra_edges: usize, seed: u64) -> Graph {
    assert!(
        max_deg >= 2,
        "need max degree ≥ 2 for a connected base tree"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    // Base: random tree with degree cap — build by attaching each new vertex
    // to a uniformly random earlier vertex with remaining capacity.
    let mut deg = vec![0usize; n];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for v in 1..n {
        let candidates: Vec<usize> = (0..v).filter(|&u| deg[u] < max_deg).collect();
        let u = *candidates
            .choose(&mut rng)
            .expect("capacity always remains with max_deg >= 2");
        edges.push((u, v));
        deg[u] += 1;
        deg[v] += 1;
    }
    let mut present: std::collections::HashSet<(usize, usize)> = edges
        .iter()
        .copied()
        .map(|(u, v)| (u.min(v), u.max(v)))
        .collect();
    let mut added = 0usize;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < 100 * extra_edges + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || deg[u] >= max_deg || deg[v] >= max_deg {
            continue;
        }
        if present.insert((u.min(v), u.max(v))) {
            edges.push((u, v));
            deg[u] += 1;
            deg[v] += 1;
            added += 1;
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::arboricity;
    use crate::traversal::is_connected;

    #[test]
    fn random_tree_is_tree() {
        for seed in 0..5 {
            let t = random_tree(40, seed);
            assert_eq!(t.m(), 39);
            assert!(is_connected(&t, None));
        }
    }

    #[test]
    fn random_tree_tiny_cases() {
        assert_eq!(random_tree(0, 1).n(), 0);
        assert_eq!(random_tree(1, 1).m(), 0);
        assert_eq!(random_tree(2, 1).m(), 1);
        assert_eq!(random_tree(3, 1).m(), 2);
    }

    #[test]
    fn forest_union_arboricity_bound() {
        for a in 1..=4 {
            let g = forest_union(60, a, 7 + a as u64);
            assert!(arboricity(&g) <= a, "arboricity exceeded {a}");
            assert!(crate::density::mad_at_most(&g, 2.0 * a as f64));
        }
    }

    #[test]
    fn regular_graph_degrees() {
        let g = random_regular(30, 3, 11);
        assert!(g.is_regular(3));
        let g4 = random_regular(25, 4, 13);
        assert!(g4.is_regular(4));
    }

    #[test]
    #[should_panic]
    fn odd_total_degree_panics() {
        random_regular(5, 3, 1);
    }

    #[test]
    fn gnm_edge_count() {
        let g = gnm(50, 100, 3);
        assert_eq!(g.m(), 100);
        assert_eq!(g.n(), 50);
    }

    #[test]
    fn bounded_degree_respects_cap() {
        let g = random_bounded_degree(80, 5, 60, 17);
        assert!(g.max_degree() <= 5);
        assert!(is_connected(&g, None));
    }

    #[test]
    fn bipartite_is_bipartite() {
        let g = random_bipartite(20, 20, 0.1, 5);
        assert!(crate::traversal::bipartition(&g, None).is_some());
    }

    #[test]
    fn determinism_per_seed() {
        let a = forest_union(40, 2, 99);
        let b = forest_union(40, 2, 99);
        assert_eq!(a, b);
        let c = forest_union(40, 2, 100);
        assert_ne!(a, c);
    }
}
