//! Lattice graphs on the plane, torus and Klein bottle.
//!
//! The planar lattices (grid, hexagonal, triangular) are the paper's
//! canonical planar workloads: the square grid is bipartite (χ = 2), the
//! hexagonal lattice has girth 6 (so mad < 3 by Proposition 2.2), and the
//! triangular lattice is a planar triangulation (mad < 6). The toroidal and
//! Klein-bottle quadrangulations feed the lower-bound experiments
//! (Theorems 2.5 and 2.6 use Klein-bottle grids `G_{k,l}`).

use crate::graph::{Graph, GraphBuilder, VertexId};

/// Index helper for `rows × cols` lattices (row-major).
#[inline]
pub fn grid_index(cols: usize, r: usize, c: usize) -> VertexId {
    r * cols + c
}

/// The planar rectangular grid with `rows × cols` vertices.
///
/// Bipartite, planar, maximum degree 4.
///
/// # Examples
///
/// ```
/// use graphs::gen::grid;
/// let g = grid(3, 4);
/// assert_eq!(g.n(), 12);
/// assert_eq!(g.m(), 17);
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    // Streams CSR rows directly: each vertex's neighbors (up, left, right,
    // down) are already in sorted index order, so million-vertex grids
    // build in one pass with no intermediate edge list.
    Graph::from_neighbors(rows * cols, |v, out| {
        let (r, c) = (v / cols, v % cols);
        if r > 0 {
            out.push(v - cols);
        }
        if c > 0 {
            out.push(v - 1);
        }
        if c + 1 < cols {
            out.push(v + 1);
        }
        if r + 1 < rows {
            out.push(v + cols);
        }
    })
}

/// The toroidal grid: both row and column directions wrap.
///
/// 4-regular quadrangulation of the torus (Euler genus 2); bipartite iff
/// both `rows` and `cols` are even.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (wrapping would create multi-edges).
pub fn torus_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus grid needs both sides ≥ 3");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(grid_index(cols, r, c), grid_index(cols, r, (c + 1) % cols));
            b.add_edge(grid_index(cols, r, c), grid_index(cols, (r + 1) % rows, c));
        }
    }
    b.build()
}

/// The `k × l` grid on the **Klein bottle**, the paper's `G_{k,l}`
/// (Figure 2, left): vertical cycles of length `k`, horizontal cycles of
/// length `l`; the horizontal wrap identifies the vertical boundary with a
/// flip (orientation-reversing).
///
/// Gallai \[14\] proved `G_{2k+1,2l+1}` is 4-chromatic; its balls of radius
/// `< k` look like planar-grid balls, which powers Theorem 2.6.
///
/// Coordinates: vertex `(r, c)` with `r ∈ 0..k` (vertical position) and
/// `c ∈ 0..l` (horizontal). Horizontal wrap from `c = l−1` to `c = 0`
/// reverses the vertical coordinate: `(r, l−1) ~ (k−1−r, 0)`.
///
/// # Panics
///
/// Panics if `k < 3` or `l < 3`.
pub fn klein_grid(k: usize, l: usize) -> Graph {
    assert!(k >= 3 && l >= 3, "Klein-bottle grid needs both sides ≥ 3");
    let idx = |r: usize, c: usize| grid_index(l, r, c);
    let mut b = GraphBuilder::new(k * l);
    for r in 0..k {
        for c in 0..l {
            // Vertical cycle (length k), plain wrap.
            b.add_edge(idx(r, c), idx((r + 1) % k, c));
            // Horizontal: plain edge inside, flipped identification at the
            // seam.
            if c + 1 < l {
                b.add_edge(idx(r, c), idx(r, c + 1));
            } else {
                b.add_edge(idx(r, l - 1), idx(k - 1 - r, 0));
            }
        }
    }
    b.build()
}

/// The hexagonal (honeycomb) lattice with `rows × cols` hexagons, built as a
/// "brick wall": planar, maximum degree 3, girth 6 (so `mad < 3` by
/// Proposition 2.2 — the workload for 3-list-coloring in Corollary 2.3(3)).
pub fn hexagonal(rows: usize, cols: usize) -> Graph {
    // Brick-wall drawing: grid graph rows (2·rows + 2) × (2·cols + 2) keeps
    // only alternating vertical rungs.
    let height = 2 * rows + 2;
    let width = 2 * cols + 2;
    let mut b = GraphBuilder::new(height * width);
    for r in 0..height {
        for c in 0..width {
            if c + 1 < width {
                b.add_edge(grid_index(width, r, c), grid_index(width, r, c + 1));
            }
            // Vertical rungs on alternating parity per row: (r + c) even.
            if r + 1 < height && (r + c) % 2 == 0 {
                b.add_edge(grid_index(width, r, c), grid_index(width, r + 1, c));
            }
        }
    }
    b.build()
}

/// The triangular lattice on `rows × cols` vertices: the grid plus one
/// diagonal per cell. Planar triangulation-like, max degree 6, mad < 6.
pub fn triangular(rows: usize, cols: usize) -> Graph {
    // Streamed CSR like `grid`: the six candidate neighbors (up, up-right
    // anti-diagonal, left, right, down-left anti-diagonal, down) are
    // emitted in sorted index order.
    Graph::from_neighbors(rows * cols, |v, out| {
        let (r, c) = (v / cols, v % cols);
        if r > 0 {
            out.push(v - cols);
            if c + 1 < cols {
                out.push(v - cols + 1);
            }
        }
        if c > 0 {
            out.push(v - 1);
        }
        if c + 1 < cols {
            out.push(v + 1);
        }
        if r + 1 < rows {
            if c > 0 {
                out.push(v + cols - 1);
            }
            out.push(v + cols);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::chromatic_number;
    use crate::girth::{girth, is_triangle_free};
    use crate::traversal::{bipartition, is_connected};

    #[test]
    fn grid_is_bipartite_planar_workload() {
        let g = grid(4, 5);
        assert!(is_connected(&g, None));
        assert!(bipartition(&g, None).is_some());
        assert_eq!(girth(&g, None), Some(4));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn torus_grid_regular() {
        let g = torus_grid(4, 6);
        assert!(g.is_regular(4));
        assert_eq!(g.m(), 2 * g.n());
        assert!(bipartition(&g, None).is_some()); // both even
        let g2 = torus_grid(5, 6);
        assert!(bipartition(&g2, None).is_none()); // odd vertical cycles
    }

    #[test]
    fn klein_grid_structure() {
        let g = klein_grid(5, 7);
        assert!(g.is_regular(4), "Klein-bottle grid must be 4-regular");
        assert_eq!(g.n(), 35);
        assert_eq!(g.m(), 70);
        assert!(is_connected(&g, None));
        assert!(is_triangle_free(&g, None));
    }

    #[test]
    fn odd_klein_grid_is_4_chromatic() {
        // Gallai's theorem: G_{2k+1, 2l+1} has chi = 4. Verify the smallest
        // instances exactly.
        for (k, l) in [(3, 3), (3, 5), (5, 5)] {
            let g = klein_grid(k, l);
            assert_eq!(chromatic_number(&g), 4, "G_{{{k},{l}}}");
        }
    }

    #[test]
    fn even_klein_grid_not_4_chromatic() {
        // With an even side the quadrangulation admits a proper 2- or
        // 3-coloring (it is bipartite when vertical cycles are even and the
        // seam parity cooperates) — in any case chi <= 3 < 4.
        let g = klein_grid(4, 4);
        assert!(chromatic_number(&g) <= 3);
    }

    #[test]
    fn hexagonal_girth_6() {
        let g = hexagonal(3, 3);
        assert_eq!(girth(&g, None), Some(6));
        assert!(g.max_degree() <= 3);
        assert!(crate::density::mad_at_most(&g, 3.0));
    }

    #[test]
    fn streamed_csr_matches_builder_construction() {
        // The streaming constructors must reproduce the GraphBuilder output
        // bit-for-bit: same vertices, same sorted adjacency, same edges.
        for (rows, cols) in [(1, 1), (1, 7), (7, 1), (3, 4), (5, 5), (2, 9)] {
            let mut b = GraphBuilder::new(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        b.add_edge(grid_index(cols, r, c), grid_index(cols, r, c + 1));
                    }
                    if r + 1 < rows {
                        b.add_edge(grid_index(cols, r, c), grid_index(cols, r + 1, c));
                    }
                }
            }
            assert_eq!(grid(rows, cols), b.build(), "grid {rows}x{cols}");

            let mut b = GraphBuilder::new(rows * cols);
            for r in 0..rows {
                for c in 0..cols {
                    if c + 1 < cols {
                        b.add_edge(grid_index(cols, r, c), grid_index(cols, r, c + 1));
                    }
                    if r + 1 < rows {
                        b.add_edge(grid_index(cols, r, c), grid_index(cols, r + 1, c));
                        if c + 1 < cols {
                            b.add_edge(grid_index(cols, r, c + 1), grid_index(cols, r + 1, c));
                        }
                    }
                }
            }
            assert_eq!(
                triangular(rows, cols),
                b.build(),
                "triangular {rows}x{cols}"
            );
        }
    }

    #[test]
    fn triangular_lattice_triangles() {
        let g = triangular(4, 4);
        assert_eq!(girth(&g, None), Some(3));
        assert!(g.max_degree() <= 6);
        assert!(crate::density::mad_at_most(&g, 6.0));
        assert_eq!(chromatic_number(&g), 3);
    }

    #[test]
    fn klein_balls_match_planar_grid_balls() {
        // Observation 2.4 mechanics: radius-1 balls in G_{7,7} match balls
        // of the 7x7 planar grid around its center.
        use crate::subgraph::InducedSubgraph;
        use crate::traversal::ball;
        let kg = klein_grid(7, 7);
        let pg = grid(7, 7);
        let center_pg = grid_index(7, 3, 3);
        let center_kg = grid_index(7, 3, 3);
        let bk = InducedSubgraph::new(&kg, ball(&kg, center_kg, 1, None));
        let bp = InducedSubgraph::new(&pg, ball(&pg, center_pg, 1, None));
        let rk = bk.from_parent(center_kg).unwrap();
        let rp = bp.from_parent(center_pg).unwrap();
        assert!(crate::iso::are_rooted_isomorphic(
            bk.graph(),
            rk,
            bp.graph(),
            rp
        ));
    }
}
