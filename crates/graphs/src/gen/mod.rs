//! Graph generators: every workload family used by the experiments.
//!
//! * [`classic`] — paths, cycles, cliques, bipartite, Mycielski, trees.
//! * [`lattice`] — planar/toroidal/Klein-bottle grids, hex and triangular
//!   lattices.
//! * [`random`] — random trees, forest unions (certified arboricity),
//!   d-regular, bounded-degree, G(n,m).
//! * [`planar`] — planar-by-construction triangulations and derivatives.
//! * [`gallai`] — random Gallai trees and minimal non-Gallai perturbations.
//! * [`registry`] — the named family registry (`name → generator(n, seed)`)
//!   shared by every experiment harness (bench bins, the scenario lab).

pub mod classic;
pub mod gallai;
pub mod lattice;
pub mod planar;
pub mod random;
pub mod registry;

pub use classic::{
    binary_tree, caterpillar, complete, complete_bipartite, cycle, mycielski, path, petersen, star,
};
pub use gallai::{break_gallai_tree, random_gallai_tree, GallaiTreeConfig};
pub use lattice::{grid, grid_index, hexagonal, klein_grid, torus_grid, triangular};
pub use planar::{
    apollonian, icosahedron, octahedron, perforated_grid, subdivide_all_edges,
    subdivided_triangulation,
};
pub use random::{
    forest_union, gnm, random_bipartite, random_bounded_degree, random_regular, random_tree,
};
pub use registry::{build_family, family, family_names, FamilySpec};
