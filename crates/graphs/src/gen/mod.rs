//! Graph generators: every workload family used by the experiments.
//!
//! * [`classic`] — paths, cycles, cliques, bipartite, Mycielski, trees.
//! * [`lattice`] — planar/toroidal/Klein-bottle grids, hex and triangular
//!   lattices.
//! * [`random`] — random trees, forest unions (certified arboricity),
//!   d-regular, bounded-degree, G(n,m).
//! * [`planar`] — planar-by-construction triangulations and derivatives.
//! * [`gallai`] — random Gallai trees and minimal non-Gallai perturbations.
//! * [`registry`] — the named family registry (`name → generator(n, seed)`)
//!   shared by every experiment harness (bench bins, the scenario lab).

pub mod classic;
pub mod gallai;
pub mod lattice;
pub mod planar;
pub mod random;
pub mod registry;

use crate::graph::Graph;

/// Two-pass streaming CSR construction for seeded edge processes.
///
/// `replay` runs the generator's whole randomized process once per call,
/// emitting every undirected edge exactly once through the callback, and
/// returns the vertex count; it is called exactly twice with an identical
/// RNG schedule. Pass one counts degrees, pass two places arcs through
/// per-row cursors, then each row is sorted in place — the classic
/// counting-sort CSR build, but **without materializing an intermediate
/// edge list**, so million-vertex families build in `O(n)` auxiliary
/// memory and skip the global `O(m log m)` edge sort a
/// [`GraphBuilder`](crate::GraphBuilder) pays.
///
/// Because both paths end in identical degree-derived offsets and
/// ascending rows, a generator rewritten onto this helper is
/// **bit-identical** to its legacy `GraphBuilder` construction whenever
/// the emitted edge set is simple (no duplicates, no self-loops) — which
/// [`Graph::from_csr`] validates.
pub(crate) fn stream_csr(mut replay: impl FnMut(&mut dyn FnMut(usize, usize)) -> usize) -> Graph {
    let mut deg: Vec<usize> = Vec::new();
    let n = replay(&mut |u, v| {
        let hi = u.max(v);
        if hi >= deg.len() {
            deg.resize(hi + 1, 0);
        }
        deg[u] += 1;
        deg[v] += 1;
    });
    deg.resize(n, 0);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut arcs = 0usize;
    offsets.push(0);
    for &d in &deg {
        arcs += d;
        offsets.push(arcs);
    }
    // The degree vector retires into the placement cursors.
    let mut cursors = deg;
    cursors.copy_from_slice(&offsets[..n]);
    let mut adj = vec![0usize; arcs];
    let second = replay(&mut |u, v| {
        adj[cursors[u]] = v;
        cursors[u] += 1;
        adj[cursors[v]] = u;
        cursors[v] += 1;
    });
    assert_eq!(second, n, "replay passes must be identical");
    for v in 0..n {
        adj[offsets[v]..offsets[v + 1]].sort_unstable();
    }
    Graph::from_csr(offsets, adj)
}

pub use classic::{
    binary_tree, caterpillar, complete, complete_bipartite, cycle, mycielski, path, petersen, star,
};
pub use gallai::{break_gallai_tree, random_gallai_tree, GallaiTreeConfig};
pub use lattice::{grid, grid_index, hexagonal, klein_grid, torus_grid, triangular};
pub use planar::{
    apollonian, icosahedron, octahedron, perforated_grid, subdivide_all_edges,
    subdivided_triangulation,
};
pub use random::{
    forest_union, gnm, random_bipartite, random_bounded_degree, random_regular, random_tree,
};
pub use registry::{build_family, family, family_names, FamilySpec};
