//! Planar-by-construction graph families.
//!
//! We never need a planarity *test*: the paper's planar corollaries only use
//! planarity through `mad` bounds (Proposition 2.2), which we verify exactly.
//! These generators maintain an explicit triangular face list, so planarity
//! is an invariant of the construction.

use crate::graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random planar triangulation grown by repeated face splits ("stacked"
/// triangulation / Apollonian network when splits nest): start from a
/// triangle, repeatedly insert a vertex into a uniformly random triangular
/// face and join it to the face's corners.
///
/// Every output is a maximal planar graph minus the outer structure —
/// 3-degenerate, `mad < 6`, contains `K_4`s.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use graphs::gen::apollonian;
/// let g = apollonian(50, 1);
/// assert_eq!(g.m(), 3 * g.n() - 8 + 2); // 2n - 5 triangles split… just check mad
/// assert!(graphs::mad_at_most(&g, 6.0));
/// ```
pub fn apollonian(n: usize, seed: u64) -> Graph {
    assert!(n >= 3, "triangulations need at least 3 vertices");
    super::stream_csr(|emit| replay_apollonian(n, seed, emit))
}

/// One pass of the seeded face-split process: emits every edge exactly once
/// and returns the vertex count. The streaming CSR build calls it twice
/// with an identical RNG schedule; each insertion joins the new vertex to
/// three distinct face corners it has never touched, so the emitted edge
/// set is simple and the result is bit-identical to the legacy
/// `GraphBuilder` construction.
fn replay_apollonian(n: usize, seed: u64, emit: &mut dyn FnMut(usize, usize)) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    emit(0, 1);
    emit(1, 2);
    emit(2, 0);
    let mut faces: Vec<[usize; 3]> = vec![[0, 1, 2]];
    for v in 3..n {
        let f = rng.gen_range(0..faces.len());
        let [x, y, z] = faces.swap_remove(f);
        emit(v, x);
        emit(v, y);
        emit(v, z);
        faces.push([v, x, y]);
        faces.push([v, y, z]);
        faces.push([v, z, x]);
    }
    n
}

/// A random triangle-free planar graph: a planar quadrangulation-like graph
/// built by subdividing every edge of a random triangulation (subdividing
/// all edges doubles girth, destroys all triangles, keeps planarity).
///
/// Returned graph has `n' = n + m` vertices where `(n, m)` are the
/// triangulation's counts. Girth ≥ 6, `mad < 4` guaranteed via girth +
/// planarity (Proposition 2.2 gives `mad < 3` for girth ≥ 6 planar graphs).
pub fn subdivided_triangulation(base_n: usize, seed: u64) -> Graph {
    let t = apollonian(base_n, seed);
    subdivide_all_edges(&t)
}

/// Subdivides every edge of `g` once (inserting one new vertex per edge).
/// Preserves planarity; doubles the girth; the result is bipartite.
pub fn subdivide_all_edges(g: &Graph) -> Graph {
    let n = g.n();
    let mut b = GraphBuilder::new(n + g.m());
    for (i, (u, v)) in g.edges().enumerate() {
        let mid = n + i;
        b.add_edge(u, mid);
        b.add_edge(mid, v);
    }
    b.build()
}

/// A random *planar quadrangulation-like* bipartite planar graph: the grid
/// with `holes` random vertices deleted (stays planar and triangle-free).
pub fn perforated_grid(rows: usize, cols: usize, holes: usize, seed: u64) -> Graph {
    let g = super::lattice::grid(rows, cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    let mut alive = vec![true; n];
    let mut removed = 0usize;
    let mut attempts = 0usize;
    while removed < holes.min(n / 2) && attempts < 20 * holes + 20 {
        attempts += 1;
        let v = rng.gen_range(0..n);
        if alive[v] {
            alive[v] = false;
            removed += 1;
        }
    }
    // Re-compact to dense ids.
    let mut id = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if alive[v] {
            id[v] = next;
            next += 1;
        }
    }
    let mut b = GraphBuilder::new(next);
    for (u, v) in g.edges() {
        if alive[u] && alive[v] {
            b.add_edge(id[u], id[v]);
        }
    }
    b.build()
}

/// The octahedron `K_{2,2,2}`: the smallest 4-regular planar triangulation.
pub fn octahedron() -> Graph {
    Graph::from_edges(
        6,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 1),
            (5, 1),
            (5, 2),
            (5, 3),
            (5, 4),
        ],
    )
}

/// The icosahedron: the 5-regular planar triangulation (χ = 4).
pub fn icosahedron() -> Graph {
    Graph::from_edges(
        12,
        [
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (0, 5),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 1),
            (1, 6),
            (1, 7),
            (2, 7),
            (2, 8),
            (3, 8),
            (3, 9),
            (4, 9),
            (4, 10),
            (5, 10),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 6),
            (6, 11),
            (7, 11),
            (8, 11),
            (9, 11),
            (10, 11),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::density::{mad_at_most, mad_f64};
    use crate::exact::chromatic_number;
    use crate::girth::{girth, is_triangle_free};
    use crate::traversal::is_connected;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The streaming CSR build is bit-identical to the legacy
        /// `GraphBuilder` edge-list construction (same replay, same seed).
        #[test]
        fn streaming_apollonian_matches_legacy_builder(n in 3usize..2048, seed in 0u64..1024) {
            let legacy = {
                let mut b = GraphBuilder::new(n);
                replay_apollonian(n, seed, &mut |u, v| {
                    b.add_edge(u, v);
                });
                b.build()
            };
            prop_assert_eq!(apollonian(n, seed), legacy);
        }
    }

    #[test]
    fn apollonian_counts() {
        // Planar triangulation grown by face splits: m = 3 + 3(n-3) = 3n - 6.
        let g = apollonian(30, 7);
        assert_eq!(g.m(), 3 * 30 - 6);
        assert!(is_connected(&g, None));
        assert!(mad_at_most(&g, 6.0), "planar graphs have mad < 6");
        assert!(!mad_at_most(&g, 4.4), "triangulations are dense");
    }

    #[test]
    fn apollonian_is_4_colorable() {
        // Stacked triangulations are 3-degenerate and even 4-chromatic
        // (they contain K4).
        let g = apollonian(20, 3);
        assert_eq!(chromatic_number(&g), 4);
    }

    #[test]
    fn subdivision_kills_triangles() {
        let g = subdivided_triangulation(15, 5);
        assert!(is_triangle_free(&g, None));
        assert!(girth(&g, None).unwrap() >= 6);
        assert!(mad_at_most(&g, 3.0), "girth ≥ 6 planar ⇒ mad < 3");
        assert!(crate::traversal::bipartition(&g, None).is_some());
    }

    #[test]
    fn subdivide_path_counts() {
        let p = super::super::classic::path(4);
        let s = subdivide_all_edges(&p);
        assert_eq!(s.n(), 4 + 3);
        assert_eq!(s.m(), 6);
    }

    #[test]
    fn perforated_grid_stays_sparse() {
        let g = perforated_grid(10, 10, 15, 2);
        assert!(g.n() >= 85);
        assert!(is_triangle_free(&g, None));
        assert!(mad_at_most(&g, 4.0), "planar triangle-free ⇒ mad < 4");
    }

    #[test]
    fn platonic_solids() {
        let oct = octahedron();
        assert!(oct.is_regular(4));
        assert_eq!(chromatic_number(&oct), 3);
        let ico = icosahedron();
        assert!(ico.is_regular(5));
        assert_eq!(ico.m(), 30);
        assert_eq!(chromatic_number(&ico), 4);
        assert!((mad_f64(&ico) - 5.0).abs() < 1e-9);
    }
}
