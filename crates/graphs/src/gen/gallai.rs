//! Random Gallai trees (Figure 1) and near-Gallai perturbations.
//!
//! Gallai trees are the *hard* instances of degree-list-coloring: they are
//! exactly the connected graphs that are not degree-choosable
//! (Theorem 1.1), and the paper's "sad" vertices are those whose rich ball
//! is a Gallai tree of d-regular vertices. These generators build Gallai
//! trees block by block, and optionally break them with a single chord —
//! the minimal perturbation that makes Theorem 1.1 applicable.

use crate::graph::{Graph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_gallai_tree`].
#[derive(Clone, Debug)]
pub struct GallaiTreeConfig {
    /// Number of blocks to attach.
    pub blocks: usize,
    /// Maximum clique-block size (≥ 2); cliques of size 2 are edges.
    pub max_clique: usize,
    /// Maximum odd-cycle-block length (≥ 5 to be distinct from triangles).
    pub max_odd_cycle: usize,
}

impl Default for GallaiTreeConfig {
    fn default() -> Self {
        GallaiTreeConfig {
            blocks: 8,
            max_clique: 5,
            max_odd_cycle: 9,
        }
    }
}

/// Builds a random Gallai tree: starts from one block, then repeatedly
/// glues a new block (clique or odd cycle) onto a uniformly random existing
/// vertex (which becomes a cut vertex).
///
/// # Examples
///
/// ```
/// use graphs::gen::{random_gallai_tree, GallaiTreeConfig};
/// let g = random_gallai_tree(&GallaiTreeConfig::default(), 42);
/// assert!(graphs::is_gallai_tree(&g, None));
/// ```
pub fn random_gallai_tree(config: &GallaiTreeConfig, seed: u64) -> Graph {
    assert!(config.blocks >= 1);
    assert!(config.max_clique >= 2);
    assert!(config.max_odd_cycle >= 5 && config.max_odd_cycle % 2 == 1);
    super::stream_csr(|emit| replay_gallai(config, seed, emit))
}

/// Which block shape a round of gluing adds.
#[derive(Clone, Copy)]
enum BlockKind {
    Clique,
    OddCycle,
}

/// One pass of the seeded block-gluing process: emits every edge exactly
/// once and returns the vertex count. The streaming CSR build calls it
/// twice with an identical RNG schedule (anchor draw, coin, size draw —
/// in that order, exactly as the legacy `GraphBuilder` construction made
/// them), so the output is bit-identical to the legacy path. Blocks share
/// only their anchor vertex, so the emitted edge set is simple.
fn replay_gallai(
    config: &GallaiTreeConfig,
    seed: u64,
    emit: &mut dyn FnMut(usize, usize),
) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next: VertexId = 0;
    let mut attach_points: Vec<VertexId> = Vec::new();
    for i in 0..config.blocks {
        let anchor = if i == 0 {
            None
        } else {
            Some(attach_points[rng.gen_range(0..attach_points.len())])
        };
        let new_vertices = if rng.gen_bool(0.5) {
            let size = rng.gen_range(2..=config.max_clique);
            glue_block(&mut next, anchor, size, BlockKind::Clique, emit)
        } else {
            let len = {
                let choices: Vec<usize> = (5..=config.max_odd_cycle).step_by(2).collect();
                choices[rng.gen_range(0..choices.len())]
            };
            glue_block(&mut next, anchor, len, BlockKind::OddCycle, emit)
        };
        attach_points.extend(new_vertices);
    }
    next
}

/// Glues one block of `size` vertices onto `anchor` (if any), allocating
/// fresh vertex ids from `next` and emitting the block's edges. Returns
/// the newly created vertex ids.
fn glue_block(
    next: &mut VertexId,
    anchor: Option<VertexId>,
    size: usize,
    kind: BlockKind,
    emit: &mut dyn FnMut(usize, usize),
) -> Vec<VertexId> {
    let fresh = if anchor.is_some() { size - 1 } else { size };
    let new: Vec<VertexId> = (*next..*next + fresh).collect();
    *next += fresh;
    let mut all = new.clone();
    if let Some(a) = anchor {
        all.push(a);
    }
    match kind {
        BlockKind::Clique => {
            for i in 0..all.len() {
                for j in i + 1..all.len() {
                    emit(all[i], all[j]);
                }
            }
        }
        BlockKind::OddCycle => {
            for i in 0..all.len() {
                emit(all[i], all[(i + 1) % all.len()]);
            }
        }
    }
    new
}

/// Takes a Gallai tree and adds one chord across a cycle block of length
/// ≥ 5 (if any), producing a graph that is *not* a Gallai tree. Returns
/// `None` when no such block exists (e.g. all blocks are cliques).
pub fn break_gallai_tree(g: &Graph, seed: u64) -> Option<Graph> {
    let decomposition = crate::blocks::block_decomposition(g, None);
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<&Vec<VertexId>> = decomposition
        .blocks
        .iter()
        .filter(|blk| blk.len() >= 5 && crate::blocks::is_odd_cycle(g, blk))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let blk = candidates[rng.gen_range(0..candidates.len())];
    // Add a chord between two non-adjacent block vertices.
    for (i, &u) in blk.iter().enumerate() {
        for &v in &blk[i + 1..] {
            if !g.has_edge(u, v) {
                let mut b = GraphBuilder::new(g.n());
                for e in g.edges() {
                    b.add_edge(e.0, e.1);
                }
                b.add_edge(u, v);
                return Some(b.build());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::is_gallai_tree;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The streaming CSR build is bit-identical to the legacy
        /// `GraphBuilder` edge-list construction (same replay, same seed).
        #[test]
        fn streaming_gallai_matches_legacy_builder(
            blocks in 1usize..40,
            max_clique in 2usize..8,
            cycle_step in 0usize..3,
            seed in 0u64..1024,
        ) {
            let cfg = GallaiTreeConfig {
                blocks,
                max_clique,
                max_odd_cycle: 5 + 2 * cycle_step,
            };
            let mut edges = Vec::new();
            let n = replay_gallai(&cfg, seed, &mut |u, v| edges.push((u, v)));
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                b.add_edge(u, v);
            }
            prop_assert_eq!(random_gallai_tree(&cfg, seed), b.build());
        }
    }

    #[test]
    fn generated_graphs_are_gallai_trees() {
        for seed in 0..10 {
            let g = random_gallai_tree(&GallaiTreeConfig::default(), seed);
            assert!(is_gallai_tree(&g, None), "seed {seed}");
            assert!(crate::traversal::is_connected(&g, None));
        }
    }

    #[test]
    fn single_block_configs() {
        let cfg = GallaiTreeConfig {
            blocks: 1,
            max_clique: 4,
            max_odd_cycle: 7,
        };
        let g = random_gallai_tree(&cfg, 3);
        assert!(is_gallai_tree(&g, None));
        let d = crate::blocks::block_decomposition(&g, None);
        assert_eq!(d.blocks.len(), 1);
    }

    #[test]
    fn breaking_destroys_gallai_property() {
        // Force cycle blocks by disallowing clique randomness effects: try
        // seeds until a breakable tree appears (cycles of length ≥ 5 get a
        // chord).
        let mut broke = false;
        for seed in 0..20 {
            let g = random_gallai_tree(&GallaiTreeConfig::default(), seed);
            if let Some(g2) = break_gallai_tree(&g, seed) {
                assert!(!is_gallai_tree(&g2, None), "chord must break Gallai-ness");
                assert_eq!(g2.m(), g.m() + 1);
                broke = true;
            }
        }
        assert!(broke, "no breakable Gallai tree found in 20 seeds");
    }

    #[test]
    fn deterministic_by_seed() {
        let cfg = GallaiTreeConfig::default();
        assert_eq!(random_gallai_tree(&cfg, 5), random_gallai_tree(&cfg, 5));
    }
}
