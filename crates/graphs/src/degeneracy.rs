//! Degeneracy (k-core) ordering.
//!
//! A graph is *k-degenerate* if every subgraph has a vertex of degree ≤ k.
//! The paper uses degeneracy implicitly throughout: `mad(G) < k` implies
//! (k−1)-degeneracy, and graphs of arboricity `a` are (2a−1)-degenerate
//! (§1.3). The smallest-last ordering produced here also powers the greedy
//! baseline colorer.

use crate::graph::{Graph, VertexId};
use crate::vertex_set::VertexSet;

/// Result of a degeneracy computation, from [`degeneracy_order`].
#[derive(Clone, Debug)]
pub struct Degeneracy {
    /// The degeneracy `k` (max, over the elimination, of the degree at
    /// removal time).
    pub degeneracy: usize,
    /// Vertices in smallest-last elimination order: each vertex has at most
    /// `degeneracy` neighbors *later* in the order.
    pub order: Vec<VertexId>,
}

/// Computes the degeneracy and a smallest-last vertex order in `O(n + m)`.
///
/// # Examples
///
/// ```
/// use graphs::{Graph, degeneracy_order};
/// // A tree is 1-degenerate.
/// let t = Graph::from_edges(4, [(0, 1), (1, 2), (1, 3)]);
/// assert_eq!(degeneracy_order(&t, None).degeneracy, 1);
/// ```
pub fn degeneracy_order(g: &Graph, mask: Option<&VertexSet>) -> Degeneracy {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let active_count = mask.map_or(n, |m| m.len());
    let mut deg = vec![0usize; n];
    let mut max_deg = 0;
    for (v, d) in deg.iter_mut().enumerate() {
        if in_mask(v) {
            *d = g.neighbors(v).iter().filter(|&&w| in_mask(w)).count();
            max_deg = max_deg.max(*d);
        }
    }
    // Bucket queue over degrees.
    let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n {
        if in_mask(v) {
            buckets[deg[v]].push(v);
        }
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(active_count);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..active_count {
        // Find the lowest non-empty bucket; `cursor` may need to step back
        // by at most 1 per removal since degrees drop by one at a time.
        while buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Entries can be stale (vertex moved to a lower bucket); skip them.
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v] && deg[v] == cursor => break v,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    while buckets[cursor].is_empty() {
                        cursor += 1;
                    }
                }
            }
        };
        removed[v] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for &w in g.neighbors(v) {
            if in_mask(w) && !removed[w] {
                deg[w] -= 1;
                buckets[deg[w]].push(w);
            }
        }
        cursor = cursor.saturating_sub(1);
    }
    // Reverse: smallest-last order lists each vertex before the vertices it
    // was eliminated after, so a vertex sees ≤ degeneracy earlier neighbors
    // when the *reverse* elimination is used for greedy coloring. We return
    // the elimination order itself; greedy colorers should scan it reversed.
    Degeneracy { degeneracy, order }
}

/// Greedy coloring along the reverse degeneracy order; uses at most
/// `degeneracy + 1` colors. Returns `color[v]` (0-based), with `usize::MAX`
/// for vertices outside the mask.
pub fn greedy_degeneracy_coloring(g: &Graph, mask: Option<&VertexSet>) -> Vec<usize> {
    let n = g.n();
    let res = degeneracy_order(g, mask);
    let mut color = vec![usize::MAX; n];
    for &v in res.order.iter().rev() {
        let mut used: Vec<usize> = g
            .neighbors(v)
            .iter()
            .filter_map(|&w| (color[w] != usize::MAX).then_some(color[w]))
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0;
        for u in used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        color[v] = c;
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: usize) -> Graph {
        let mut e = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                e.push((i, j));
            }
        }
        Graph::from_edges(n, e)
    }

    #[test]
    fn clique_degeneracy() {
        assert_eq!(degeneracy_order(&clique(5), None).degeneracy, 4);
    }

    #[test]
    fn cycle_degeneracy_2() {
        let c = Graph::from_edges(6, (0..6).map(|i| (i, (i + 1) % 6)));
        assert_eq!(degeneracy_order(&c, None).degeneracy, 2);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Graph::empty(4);
        let d = degeneracy_order(&g, None);
        assert_eq!(d.degeneracy, 0);
        assert_eq!(d.order.len(), 4);
    }

    #[test]
    fn order_is_elimination_order() {
        // Star K_{1,4}: leaves eliminated first, center's removal-degree 0.
        let s = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let d = degeneracy_order(&s, None);
        assert_eq!(d.degeneracy, 1);
        assert_eq!(d.order.len(), 5);
    }

    #[test]
    fn greedy_coloring_proper_and_tight() {
        let c5 = Graph::from_edges(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let col = greedy_degeneracy_coloring(&c5, None);
        for (u, v) in c5.edges() {
            assert_ne!(col[u], col[v]);
        }
        assert!(col.iter().all(|&c| c <= 2));
    }

    #[test]
    fn masked_degeneracy() {
        // K4 minus a vertex (via mask) is a triangle: degeneracy 2.
        let k4 = clique(4);
        let mut mask = VertexSet::full(4);
        mask.remove(0);
        assert_eq!(degeneracy_order(&k4, Some(&mask)).degeneracy, 2);
        let col = greedy_degeneracy_coloring(&k4, Some(&mask));
        assert_eq!(col[0], usize::MAX);
        assert!(col[1..].iter().all(|&c| c <= 2));
    }

    #[test]
    fn tree_is_one_degenerate() {
        let t = Graph::from_edges(7, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let d = degeneracy_order(&t, None);
        assert_eq!(d.degeneracy, 1);
        let col = greedy_degeneracy_coloring(&t, None);
        for (u, v) in t.edges() {
            assert_ne!(col[u], col[v]);
        }
        assert!(col.iter().all(|&c| c <= 1));
    }
}
