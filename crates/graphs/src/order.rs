//! Deterministic cache-locality vertex orders.
//!
//! The engine's relabeling layer (see `engine::GraphView`) wants a
//! permutation that places graph-adjacent vertices at nearby dense
//! indices, so that shard spans become cache-contiguous neighborhoods
//! instead of arbitrary id ranges. [`locality_order`] computes a seeded,
//! fully deterministic reverse-Cuthill–McKee-style order: per component a
//! low-degree peripheral start, breadth-first layers with neighbors
//! enqueued in ascending `(degree, tie, id)` order, and a final reversal
//! (the classic bandwidth-reducing move). The `tie` term mixes the seed
//! into otherwise-equal-degree choices, so different seeds explore
//! different (equally valid) layouts while any fixed seed replays exactly.
//!
//! The order is a **performance artifact only**: callers must keep every
//! observable keyed on original vertex ids. Comparison sorts are fine here
//! — this runs once at session boot, never on a per-round hot path.

use rand::mix64;

/// Domain tag separating locality-order tie-break coins from every other
/// consumer of the shared `mix64` stream.
const ORDER_DOMAIN: u64 = 0x4c4f_4341_4c49_5459; // "LOCALITY"

/// A seeded deterministic RCM-style locality permutation of `0..n`.
///
/// `neighbors(v, buf)` must fill `buf` with `v`'s neighbors (any order;
/// duplicates allowed and ignored via the visited set). Returns `order`
/// with `order[pos] = v`: the vertex placed at position `pos`. Every
/// vertex appears exactly once, including isolated ones.
///
/// Properties relied on by callers:
/// * **Deterministic**: a pure function of the adjacency and `seed`.
/// * **Complete**: a permutation of `0..n`, component by component.
/// * **Local**: BFS layers are contiguous, so graph distance bounds index
///   distance within a component's span.
pub fn locality_order(
    n: usize,
    seed: u64,
    mut neighbors: impl FnMut(usize, &mut Vec<usize>),
) -> Vec<usize> {
    let mut buf = Vec::new();
    let mut deg = vec![0u32; n];
    for (v, d) in deg.iter_mut().enumerate() {
        buf.clear();
        neighbors(v, &mut buf);
        *d = buf.len() as u32;
    }
    // Key ordering all choices: degree first (peripheral, low-degree
    // vertices lead), then a seeded shuffle within equal degrees, with the
    // id as the final total-order tie-break.
    let key = |v: usize| (deg[v], mix64(mix64(seed, ORDER_DOMAIN), v as u64), v);
    // Start candidates for each component, cheapest first.
    let mut starts: Vec<usize> = (0..n).collect();
    starts.sort_unstable_by_key(|&v| key(v));

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut frontier = Vec::new();
    for &s in &starts {
        if visited[s] {
            continue;
        }
        visited[s] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            buf.clear();
            neighbors(v, &mut buf);
            frontier.clear();
            for &w in buf.iter() {
                if !visited[w] {
                    visited[w] = true;
                    frontier.push(w);
                }
            }
            frontier.sort_unstable_by_key(|&w| key(w));
            queue.extend(frontier.iter().copied());
        }
    }
    debug_assert_eq!(order.len(), n);
    // Reverse Cuthill–McKee: reversing a BFS order tightens bandwidth.
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, Graph};

    fn order_of(g: &Graph, seed: u64) -> Vec<usize> {
        locality_order(g.n(), seed, |v, buf| {
            buf.extend_from_slice(g.neighbors(v));
        })
    }

    fn assert_permutation(order: &[usize], n: usize) {
        assert_eq!(order.len(), n);
        let mut seen = vec![false; n];
        for &v in order {
            assert!(!seen[v], "vertex {v} placed twice");
            seen[v] = true;
        }
    }

    #[test]
    fn is_a_permutation_on_varied_families() {
        for g in [
            gen::path(17),
            gen::cycle(12),
            gen::star(9),
            gen::random_tree(64, 5),
            gen::grid(6, 7),
            Graph::from_edges(5, std::iter::empty::<(usize, usize)>()),
        ] {
            for seed in [0u64, 1, 99] {
                assert_permutation(&order_of(&g, seed), g.n());
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let g = gen::random_tree(80, 7);
        assert_eq!(order_of(&g, 3), order_of(&g, 3), "same seed replays");
        // Some seed pair must disagree on a tree with many equal degrees.
        assert!(
            (0..8u64).any(|s| order_of(&g, s) != order_of(&g, s + 8)),
            "seed never perturbs the order"
        );
    }

    #[test]
    fn path_order_is_bandwidth_one() {
        // On a path, RCM from an endpoint is the path itself: every edge
        // spans adjacent positions.
        let g = gen::path(30);
        let order = order_of(&g, 0);
        let mut pos = vec![0usize; 30];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for v in 0..29 {
            assert_eq!(
                pos[v].abs_diff(pos[v + 1]),
                1,
                "edge ({v},{}) stretched",
                v + 1
            );
        }
    }

    #[test]
    fn components_occupy_contiguous_spans() {
        // Two disjoint cycles: each component's vertices must be placed
        // consecutively (BFS exhausts a component before starting the next).
        let mut edges = Vec::new();
        for v in 0..5usize {
            edges.push((v, (v + 1) % 5));
        }
        for v in 0..4usize {
            edges.push((5 + v, 5 + (v + 1) % 4));
        }
        let g = Graph::from_edges(9, edges);
        let order = order_of(&g, 11);
        assert_permutation(&order, 9);
        let first_comp = usize::from(order[0] >= 5);
        let boundary = order
            .iter()
            .position(|&v| usize::from(v >= 5) != first_comp);
        let b = boundary.expect("both components present");
        assert!(
            order[b..]
                .iter()
                .all(|&v| usize::from(v >= 5) != first_comp),
            "components interleaved: {order:?}"
        );
    }
}
