//! # minitest — a deterministic property-testing shim with the `proptest` API
//!
//! The build environment is offline, so crates.io `proptest` is unavailable.
//! This crate reimplements, from scratch, exactly the macro surface the
//! workspace's property tests use — consumers declare
//! `proptest = { package = "minitest", ... }` so test files keep the
//! familiar `use proptest::prelude::*` spelling:
//!
//! * [`proptest!`] with an optional `#![proptest_config(...)]` header and
//!   test functions whose arguments are drawn from integer ranges
//!   (`n in 20usize..150`, `seed in 0u64..1000`, inclusive ranges too).
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`], each with
//!   optional format-message arguments.
//! * [`prop_assume!`] — discards the case instead of failing.
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike upstream proptest there is no shrinking: cases are sampled
//! deterministically (seeded per test by case index), and a failing case
//! reports its case number and sampled arguments, which is enough to replay.

pub use detrand;

/// Runner configuration: how many sampled cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to sample and execute.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case: failure message or a discard request.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assert*` failed with this message.
    Fail(String),
    /// `prop_assume!` rejected the sampled inputs; the case is skipped.
    Reject,
}

/// `Result` alias the generated case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Defines property tests. See the crate docs for the accepted grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $range:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::detrand::{Rng as _, SeedableRng as _};
                let config: $crate::ProptestConfig = $cfg;
                // A per-test deterministic seed: the test name hashed.
                let test_seed: u64 = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3)
                    });
                for case in 0..config.cases {
                    let mut rng = $crate::detrand::rngs::StdRng::seed_from_u64(
                        $crate::detrand::mix64(test_seed, case as u64),
                    );
                    $(let $arg = rng.gen_range($range);)*
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "property {} failed at case {case} with inputs {:?}:\n{msg}",
                            stringify!($name),
                            ($(stringify!($arg), $arg),*),
                        ),
                    }
                }
            }
        )*
    };
}

/// Asserts inside a [`proptest!`] body; failure reports the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)*);
    }};
}

/// Discards the current case when its sampled inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges are respected and assertions pass.
        #[test]
        fn sampled_args_in_range(n in 5usize..50, seed in 0u64..100, k in 1usize..=3) {
            prop_assert!((5..50).contains(&n));
            prop_assert!(seed < 100, "seed {seed} out of range");
            prop_assert!((1..=3).contains(&k));
            prop_assert_eq!(n + k, k + n);
            prop_assert_ne!(n, n + k);
        }

        /// `prop_assume` discards rather than fails.
        #[test]
        fn assume_discards(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn default_config_runs() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n = {n} is small");
            }
        }
        always_fails();
    }
}
