//! Cole–Vishkin 3-coloring of rooted forests in `O(log* n)` rounds.
//!
//! The classic deterministic symmetry-breaking primitive (Goldberg–Plotkin–
//! Shannon \[17\] use the same bit technique): starting from the `O(log n)`-bit
//! unique identifiers, each iteration shrinks colors from `B` bits to
//! `⌈log₂ B⌉ + 1` bits by encoding the lowest bit position where a vertex's
//! color differs from its parent's; once six colors remain, three shift-down
//! rounds remove colors 5, 4, 3.
//!
//! Each simulated round only reads the parent's state from the previous
//! round, so this is a faithful LOCAL execution; rounds are charged to the
//! ledger as they run.

use crate::ledger::RoundLedger;
use graphs::VertexId;

/// A rooted forest over vertices `0..n`, described by parent pointers.
///
/// `parent[v] == v` marks a root; `parent[v] == usize::MAX` marks a vertex
/// that is not part of the forest (it is ignored entirely).
#[derive(Clone, Debug)]
pub struct RootedForest {
    parent: Vec<usize>,
}

impl RootedForest {
    /// Wraps parent pointers. See type-level docs for conventions.
    ///
    /// # Panics
    ///
    /// Panics if some `parent[v]` is neither `usize::MAX`, `v`, nor a valid
    /// member vertex, or if the parent pointers contain a cycle.
    pub fn new(parent: Vec<usize>) -> Self {
        let n = parent.len();
        for (v, &p) in parent.iter().enumerate() {
            if p == usize::MAX {
                continue;
            }
            assert!(p < n, "parent of {v} out of range");
            assert_ne!(parent[p], usize::MAX, "parent of {v} not in forest");
        }
        // Cycle check by pointer-jumping.
        let f = RootedForest { parent };
        for v in 0..n {
            if f.parent[v] == usize::MAX {
                continue;
            }
            let mut steps = 0usize;
            let mut u = v;
            while f.parent[u] != u {
                u = f.parent[u];
                steps += 1;
                assert!(steps <= n, "cycle detected in parent pointers");
            }
        }
        f
    }

    /// Number of vertices in the ambient id space.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Parent pointer (see conventions on [`RootedForest`]).
    pub fn parent(&self, v: VertexId) -> usize {
        self.parent[v]
    }

    /// Whether `v` belongs to the forest.
    pub fn contains(&self, v: VertexId) -> bool {
        self.parent[v] != usize::MAX
    }

    /// Iterator over member vertices.
    pub fn members(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n()).filter(|&v| self.contains(v))
    }

    /// Children lists (computed; `O(n)`).
    pub fn children(&self) -> Vec<Vec<VertexId>> {
        let mut ch = vec![Vec::new(); self.n()];
        for v in self.members() {
            let p = self.parent[v];
            if p != v {
                ch[p].push(v);
            }
        }
        ch
    }
}

/// 3-colors a rooted forest in `O(log* n)` LOCAL rounds (charged to
/// `ledger` under `"cole-vishkin"` and `"shift-down"`).
///
/// Returns `color[v] ∈ {0,1,2}` for members, `usize::MAX` for non-members.
///
/// # Examples
///
/// ```
/// use local_model::{cole_vishkin_3color, RootedForest, RoundLedger};
/// // A path rooted at 0: 0 <- 1 <- 2 <- 3 <- 4.
/// let f = RootedForest::new(vec![0, 0, 1, 2, 3]);
/// let mut ledger = RoundLedger::new();
/// let col = cole_vishkin_3color(&f, &mut ledger);
/// for v in 1..5 {
///     assert_ne!(col[v], col[f.parent(v)]);
///     assert!(col[v] < 3);
/// }
/// ```
pub fn cole_vishkin_3color(forest: &RootedForest, ledger: &mut RoundLedger) -> Vec<usize> {
    let n = forest.n();
    // Initial colors: unique ids.
    let mut color: Vec<usize> = (0..n).collect();
    for (v, c) in color.iter_mut().enumerate() {
        if !forest.contains(v) {
            *c = usize::MAX;
        }
    }
    // CV iterations until at most 6 colors (values 0..6).
    let mut cv_rounds = 0u64;
    while forest.members().any(|v| color[v] >= 6) {
        let prev = color.clone();
        for v in forest.members() {
            let p = forest.parent(v);
            let my = prev[v];
            let other = if p == v {
                // Root: compare against a fixed different value.
                if my == 0 {
                    1
                } else {
                    0
                }
            } else {
                prev[p]
            };
            debug_assert_ne!(my, other, "proper coloring invariant");
            let diff = my ^ other;
            let i = diff.trailing_zeros() as usize;
            color[v] = 2 * i + ((my >> i) & 1);
        }
        cv_rounds += 1;
        debug_assert!(cv_rounds <= 64 + 4, "CV must converge in log* rounds");
    }
    ledger.charge("cole-vishkin", cv_rounds);

    // Shift-down + eliminate colors 5, 4, 3 (two rounds each).
    let children = forest.children();
    for target in (3..6).rev() {
        // Round 1: shift down. Every non-root adopts its parent's color;
        // each root picks a color in 0..6 different from its own current
        // color and from its children's *new* colors (which equal the root's
        // old color — so any other value works; pick the smallest).
        let prev = color.clone();
        for v in forest.members() {
            let p = forest.parent(v);
            if p == v {
                color[v] = (0..6)
                    .find(|&c| c != prev[v])
                    .expect("six colors available");
            } else {
                color[v] = prev[p];
            }
        }
        // Round 2: all vertices colored `target` simultaneously recolor into
        // {0,1,2}: after shift-down all children of a vertex share one
        // color, so only two constraints exist (parent, children).
        let prev = color.clone();
        for v in forest.members() {
            if prev[v] != target {
                continue;
            }
            let p = forest.parent(v);
            let parent_color = if p == v { usize::MAX } else { prev[p] };
            let child_color = children[v].first().map_or(usize::MAX, |&c| prev[c]);
            color[v] = (0..3)
                .find(|&c| c != parent_color && c != child_color)
                .expect("three colors, two constraints");
        }
        ledger.charge("shift-down", 2);
    }
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn forest_from_bfs(g: &graphs::Graph, root: usize) -> RootedForest {
        let parents = graphs::bfs_parents(g, root, None);
        RootedForest::new(parents)
    }

    fn assert_proper_3(f: &RootedForest, col: &[usize]) {
        for v in f.members() {
            assert!(col[v] < 3, "color of {v} is {}", col[v]);
            let p = f.parent(v);
            if p != v {
                assert_ne!(col[v], col[p], "edge ({v},{p}) monochromatic");
            }
        }
    }

    #[test]
    fn colors_long_path() {
        let g = gen::path(1000);
        let f = forest_from_bfs(&g, 0);
        let mut ledger = RoundLedger::new();
        let col = cole_vishkin_3color(&f, &mut ledger);
        assert_proper_3(&f, &col);
        // log* of anything practical is tiny.
        assert!(ledger.phase_total("cole-vishkin") <= 8);
        assert_eq!(ledger.phase_total("shift-down"), 6);
    }

    #[test]
    fn colors_binary_tree() {
        let g = gen::binary_tree(9);
        let f = forest_from_bfs(&g, 0);
        let mut ledger = RoundLedger::new();
        let col = cole_vishkin_3color(&f, &mut ledger);
        assert_proper_3(&f, &col);
    }

    #[test]
    fn colors_random_trees() {
        for seed in 0..5 {
            let g = gen::random_tree(300, seed);
            let f = forest_from_bfs(&g, 0);
            let mut ledger = RoundLedger::new();
            let col = cole_vishkin_3color(&f, &mut ledger);
            assert_proper_3(&f, &col);
        }
    }

    #[test]
    fn handles_multi_tree_forest_with_nonmembers() {
        // Two stars and two excluded vertices.
        let mut parent = vec![usize::MAX; 8];
        parent[0] = 0;
        parent[1] = 0;
        parent[2] = 0;
        parent[3] = 3;
        parent[4] = 3;
        parent[5] = 3;
        let f = RootedForest::new(parent);
        let mut ledger = RoundLedger::new();
        let col = cole_vishkin_3color(&f, &mut ledger);
        assert_proper_3(&f, &col);
        assert_eq!(col[6], usize::MAX);
        assert_eq!(col[7], usize::MAX);
    }

    #[test]
    fn singleton_forest() {
        let f = RootedForest::new(vec![0]);
        let mut ledger = RoundLedger::new();
        let col = cole_vishkin_3color(&f, &mut ledger);
        assert!(col[0] < 3);
    }

    #[test]
    #[should_panic]
    fn cycle_in_parents_panics() {
        RootedForest::new(vec![1, 0]);
    }
}
