//! Acyclic orientations and forest decompositions.
//!
//! Orienting every edge toward the higher-priority endpoint (an arbitrary
//! total order known locally, e.g. `(layer, id)`) yields an acyclic
//! orientation in zero communication rounds; indexing each vertex's
//! out-edges `0..out_deg` splits the edge set into `max_out_degree` rooted
//! forests (each vertex has ≤ 1 parent per index). This is the
//! Goldberg–Plotkin–Shannon / Panconesi–Rizzi decomposition step.

use crate::cole_vishkin::RootedForest;
use graphs::{Graph, VertexId, VertexSet};

/// An acyclic orientation of (the masked part of) a graph: for each vertex,
/// the sorted list of out-neighbors.
#[derive(Clone, Debug)]
pub struct Orientation {
    out: Vec<Vec<VertexId>>,
}

impl Orientation {
    /// Orients every masked edge toward the endpoint with higher `priority`
    /// (ties broken by id — priorities need not be distinct).
    ///
    /// Requires zero LOCAL rounds (priorities are exchanged with neighbors
    /// in the round that established the mask).
    pub fn by_priority(g: &Graph, mask: Option<&VertexSet>, priority: &[usize]) -> Self {
        assert_eq!(priority.len(), g.n());
        let n = g.n();
        let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
        let mut out = vec![Vec::new(); n];
        for v in 0..n {
            if !in_mask(v) {
                continue;
            }
            for &w in g.neighbors(v) {
                if in_mask(w) && (priority[v], v) < (priority[w], w) {
                    out[v].push(w);
                }
            }
        }
        Orientation { out }
    }

    /// Orients by vertex id alone (the degenerate priority).
    pub fn by_id(g: &Graph, mask: Option<&VertexSet>) -> Self {
        Orientation::by_priority(g, mask, &vec![0; g.n()])
    }

    /// Out-neighbors of `v`.
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.out[v]
    }

    /// Maximum out-degree.
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Splits the oriented edges into `k = max_out_degree` rooted forests:
    /// forest `i` contains each vertex's `i`-th out-edge, pointing to the
    /// parent. Vertices outside the mask are non-members of every forest.
    ///
    /// Charged rounds: 1 (each vertex tells each out-neighbor its index).
    pub fn forest_decomposition(
        &self,
        mask: Option<&VertexSet>,
        ledger: &mut crate::RoundLedger,
    ) -> Vec<RootedForest> {
        let n = self.out.len();
        let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
        let k = self.max_out_degree();
        let mut forests = Vec::with_capacity(k);
        for i in 0..k {
            let mut parent = vec![usize::MAX; n];
            for (v, p) in parent.iter_mut().enumerate() {
                if in_mask(v) {
                    *p = self.out[v].get(i).copied().unwrap_or(v);
                }
            }
            forests.push(RootedForest::new(parent));
        }
        ledger.charge("forest-decomposition", 1);
        forests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundLedger;
    use graphs::gen;

    #[test]
    fn orientation_is_acyclic_and_covers_edges() {
        let g = gen::complete(6);
        let o = Orientation::by_id(&g, None);
        let total_out: usize = (0..6).map(|v| o.out_neighbors(v).len()).sum();
        assert_eq!(total_out, g.m());
        assert_eq!(o.max_out_degree(), 5); // vertex 0 points at everyone
    }

    #[test]
    fn priority_orientation_prefers_low_priority_as_tail() {
        let g = gen::path(3);
        // Priorities: 2, 0, 1 — edges point toward higher (priority, id).
        let o = Orientation::by_priority(&g, None, &[2, 0, 1]);
        assert_eq!(o.out_neighbors(1), &[0, 2]);
        assert!(o.out_neighbors(0).is_empty());
    }

    #[test]
    fn forests_partition_edges() {
        let g = gen::gnm(40, 80, 3);
        let o = Orientation::by_id(&g, None);
        let mut ledger = RoundLedger::new();
        let forests = o.forest_decomposition(None, &mut ledger);
        let mut count = 0usize;
        for f in &forests {
            for v in f.members() {
                if f.parent(v) != v {
                    assert!(g.has_edge(v, f.parent(v)));
                    count += 1;
                }
            }
        }
        assert_eq!(count, g.m(), "forests must exactly cover the edge set");
        assert_eq!(ledger.total(), 1);
    }

    #[test]
    fn masked_orientation_ignores_outside() {
        let g = gen::cycle(6);
        let mask = VertexSet::from_iter_with_universe(6, [0, 1, 2]);
        let o = Orientation::by_id(&g, Some(&mask));
        assert!(o.out_neighbors(3).is_empty());
        assert!(o.out_neighbors(5).is_empty());
        // Edge (0,1) and (1,2) oriented upward; (2,3), (5,0) dropped.
        let total: usize = (0..6).map(|v| o.out_neighbors(v).len()).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn forest_count_bounded_by_max_out_degree() {
        let g = gen::random_regular(24, 4, 9);
        let o = Orientation::by_id(&g, None);
        let mut ledger = RoundLedger::new();
        let forests = o.forest_decomposition(None, &mut ledger);
        assert!(forests.len() <= 4);
    }
}
