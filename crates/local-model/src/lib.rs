//! # local-model — a LOCAL-model simulator with deterministic primitives
//!
//! The paper operates in the LOCAL model of distributed computing \[20\]:
//! synchronous rounds, unbounded messages and computation, unique ids, and
//! the round count as the only complexity measure. This crate provides:
//!
//! * [`RoundLedger`] — per-phase round accounting. Every primitive charges
//!   the rounds a LOCAL execution takes, so experiments can put *measured*
//!   round counts next to the paper's bounds.
//! * [`cole_vishkin_3color`] — `O(log* n)` forest 3-coloring (the \[17\]
//!   technique).
//! * [`Orientation`] / forest decomposition — acyclic orientations split
//!   into rooted forests.
//! * [`degree_plus_one_coloring`] — `(Δ+1)`-coloring in `O(Δ² + log* n)`
//!   rounds (merge-reduce), the "(d+1)-coloring … \[17\]" step of Lemma 3.2.
//! * [`barenboim_elkin_coloring`] — the `⌊(2+ε)a⌋+1`-color baseline \[4\]
//!   that the paper improves upon.
//! * [`ruling_set`] / [`ruling_forest`] — `(α, α·log n)`-ruling structures
//!   \[3\], the scaffolding of Lemma 3.2.
//! * [`gather_balls`] / [`detect_clique`] — ball collection and the paper's
//!   two-round clique detection, with honest round charging.
//!
//! # Examples
//!
//! ```
//! use local_model::{barenboim_elkin_coloring, RoundLedger};
//! use graphs::gen;
//!
//! let g = gen::forest_union(100, 2, 1);
//! let mut ledger = RoundLedger::new();
//! let coloring = barenboim_elkin_coloring(&g, None, 2, 1.0, &mut ledger);
//! assert!(coloring.iter().all(|&c| c < 7)); // ⌊(2+1)·2⌋ + 1
//! println!("{ledger}");
//! ```

pub mod barenboim_elkin;
pub mod cole_vishkin;
pub mod forests;
pub mod gather;
pub mod goldberg_plotkin_shannon;
pub mod ledger;
pub mod randomized;
pub mod reduce;
pub mod ruling;

pub use barenboim_elkin::{barenboim_elkin_coloring, h_partition, HPartition};
pub use cole_vishkin::{cole_vishkin_3color, RootedForest};
pub use forests::Orientation;
pub use gather::{clique_at_apex, detect_clique, gather_balls, merge_fresh};
pub use goldberg_plotkin_shannon::{bounded_peeling_coloring, degree_peeling, gps_seven_coloring};
pub use ledger::RoundLedger;
pub use randomized::{per_vertex_rng, randomized_list_coloring, RandomizedColoring};
pub use reduce::{coloring_by_forest_merge, degree_plus_one_coloring};
pub use ruling::{claim_choice, ruling_beta, ruling_bits, ruling_forest, ruling_set, RulingForest};
