//! (α, β)-ruling sets and ruling forests (Awerbuch–Goldberg–Luby–Plotkin
//! \[3\]), the scaffolding of the paper's Lemma 3.2.
//!
//! A *(α, β)-ruling forest* with respect to `U` is a family of disjoint
//! rooted trees covering `U`, whose roots are pairwise at distance ≥ α and
//! whose depth is ≤ β. The deterministic construction splits by identifier
//! bits: rulers of the two halves are computed in parallel, then second-half
//! rulers too close (< α) to first-half rulers are dropped. Each of the
//! `⌈log₂ n⌉` levels costs α rounds of distance checking, giving a
//! `(α, α·⌈log₂ n⌉)`-ruling set in `O(α log n)` rounds, exactly as the
//! paper uses it.

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};
use std::collections::VecDeque;

/// Computes an `(alpha, alpha·⌈log₂ n⌉)`-ruling set of `subset` in
/// `g[mask]`.
///
/// Guarantees: returned vertices are pairwise at distance ≥ `alpha` in
/// `g[mask]`, and every vertex of `subset` is within `alpha·⌈log₂ n⌉` of a
/// returned vertex *in its own masked component*.
///
/// Charges `alpha` rounds per identifier-bit level.
pub fn ruling_set(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    alpha: usize,
    ledger: &mut RoundLedger,
) -> Vec<VertexId> {
    assert!(alpha >= 1, "alpha must be at least 1");
    let bits = usize::BITS - g.n().next_power_of_two().trailing_zeros().max(1);
    let bits = (usize::BITS - bits) as usize; // ⌈log2 n⌉ with a floor of 1
    let mut rulers = rule_recursive(g, mask, subset, bits.saturating_sub(1), alpha);
    rulers.sort_unstable();
    ledger.charge("ruling-set", (alpha as u64) * (bits as u64));
    rulers
}

fn rule_recursive(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    bit: usize,
    alpha: usize,
) -> Vec<VertexId> {
    if subset.len() <= 1 {
        return subset.to_vec();
    }
    let (lo, hi): (Vec<VertexId>, Vec<VertexId>) =
        subset.iter().partition(|&&v| (v >> bit) & 1 == 0);
    if lo.is_empty() || hi.is_empty() {
        // All ids share this bit; descend (distinct ids guarantee progress).
        assert!(bit > 0, "identifiers must be distinct");
        return rule_recursive(g, mask, subset, bit - 1, alpha);
    }
    let r0 = if bit == 0 {
        vec![lo[0]]
    } else {
        rule_recursive(g, mask, &lo, bit - 1, alpha)
    };
    let r1 = if bit == 0 {
        vec![hi[0]]
    } else {
        rule_recursive(g, mask, &hi, bit - 1, alpha)
    };
    // Drop r1 rulers within distance < alpha of r0 (multi-source BFS).
    let near = within_distance(g, mask, &r0, alpha.saturating_sub(1));
    let mut out = r0;
    out.extend(r1.into_iter().filter(|&v| !near.contains(v)));
    out
}

/// The set of vertices within distance ≤ `radius` of `sources` in
/// `g[mask]`.
fn within_distance(
    g: &Graph,
    mask: Option<&VertexSet>,
    sources: &[VertexId],
    radius: usize,
) -> VertexSet {
    let n = g.n();
    let mut dist = vec![usize::MAX; n];
    let mut out = VertexSet::new(n);
    let mut q = VecDeque::new();
    for &s in sources {
        if mask.is_none_or(|m| m.contains(s)) {
            dist[s] = 0;
            out.insert(s);
            q.push_back(s);
        }
    }
    while let Some(u) = q.pop_front() {
        if dist[u] == radius {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w] == usize::MAX && mask.is_none_or(|m| m.contains(w)) {
                dist[w] = dist[u] + 1;
                out.insert(w);
                q.push_back(w);
            }
        }
    }
    out
}

/// An (α, β)-ruling forest: disjoint rooted trees covering a target subset.
#[derive(Clone, Debug)]
pub struct RulingForest {
    /// Tree roots (the ruling set), sorted.
    pub roots: Vec<VertexId>,
    /// `parent[v]`: parent in the tree, `v` for roots, `usize::MAX` for
    /// vertices not in any tree.
    pub parent: Vec<usize>,
    /// `root_of[v]`: the root of `v`'s tree (`usize::MAX` outside).
    pub root_of: Vec<usize>,
    /// `depth[v]`: distance to the root within the tree.
    pub depth: Vec<usize>,
    /// The spacing parameter α the forest was built with.
    pub alpha: usize,
}

impl RulingForest {
    /// All tree members (sorted).
    pub fn members(&self) -> Vec<VertexId> {
        (0..self.parent.len())
            .filter(|&v| self.parent[v] != usize::MAX)
            .collect()
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> usize {
        self.members()
            .into_iter()
            .map(|v| self.depth[v])
            .max()
            .unwrap_or(0)
    }

    /// Members of the tree rooted at `root`, sorted.
    pub fn tree_members(&self, root: VertexId) -> Vec<VertexId> {
        (0..self.parent.len())
            .filter(|&v| self.root_of[v] == root)
            .collect()
    }
}

/// Builds an `(alpha, alpha·⌈log₂ n⌉)`-ruling forest with respect to
/// `subset` in `g[mask]` (paper's Lemma 3.2 uses `alpha = 2c·log n`).
///
/// Trees consist of the shortest-path parent chains from each `subset`
/// vertex to its nearest ruler (ties by smaller ruler id), so every tree
/// vertex lies on a path from a `subset` vertex to a root. Rounds:
/// the ruling-set construction plus `β` rounds of claiming BFS plus `β`
/// rounds of chain marking.
///
/// # Panics
///
/// Panics if some `subset` vertex is outside the mask.
///
/// # Examples
///
/// ```
/// use local_model::{ruling_forest, RoundLedger};
/// use graphs::gen;
/// let g = gen::path(64);
/// let every: Vec<usize> = (0..64).collect();
/// let mut ledger = RoundLedger::new();
/// let rf = ruling_forest(&g, None, &every, 4, &mut ledger);
/// assert!(!rf.roots.is_empty());
/// // Roots pairwise ≥ 4 apart on the path.
/// for w in rf.roots.windows(2) {
///     assert!(w[1] - w[0] >= 4);
/// }
/// ```
pub fn ruling_forest(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    alpha: usize,
    ledger: &mut RoundLedger,
) -> RulingForest {
    let n = g.n();
    for &u in subset {
        assert!(
            mask.is_none_or(|m| m.contains(u)),
            "subset vertex {u} outside mask"
        );
    }
    let roots = ruling_set(g, mask, subset, alpha, ledger);
    let bits = ((n.max(2) as f64).log2().ceil() as usize).max(1);
    let beta = alpha * bits;

    // Claiming BFS from all roots simultaneously (ties: smaller root id,
    // then smaller parent id — deterministic).
    let mut dist = vec![usize::MAX; n];
    let mut root_of = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &r in &roots {
        dist[r] = 0;
        root_of[r] = r;
        parent[r] = r;
        frontier.push(r);
    }
    let mut d = 0usize;
    while !frontier.is_empty() && d < beta {
        d += 1;
        let mut next: Vec<VertexId> = Vec::new();
        // Deterministic tie-breaking: iterate frontier sorted by (root, id).
        let mut f = frontier.clone();
        f.sort_unstable_by_key(|&v| (root_of[v], v));
        for &u in &f {
            for &w in g.neighbors(u) {
                if dist[w] == usize::MAX && mask.is_none_or(|m| m.contains(w)) {
                    dist[w] = d;
                    root_of[w] = root_of[u];
                    parent[w] = u;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    ledger.charge("ruling-forest-claim", beta as u64);

    // Prune to parent chains from subset vertices.
    let mut keep = VertexSet::new(n);
    for &u in subset {
        debug_assert_ne!(
            root_of[u],
            usize::MAX,
            "ruling-set domination must reach {u} within beta"
        );
        let mut v = u;
        while keep.insert(v) && parent[v] != v {
            v = parent[v];
        }
    }
    for &r in &roots {
        keep.insert(r);
    }
    ledger.charge("ruling-forest-prune", beta as u64);
    let mut depth = vec![usize::MAX; n];
    for v in 0..n {
        if !keep.contains(v) {
            parent[v] = usize::MAX;
            root_of[v] = usize::MAX;
        } else {
            depth[v] = dist[v];
        }
    }
    RulingForest {
        roots,
        parent,
        root_of,
        depth,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{bfs_distances, gen};

    fn check_spacing(g: &Graph, mask: Option<&VertexSet>, rulers: &[VertexId], alpha: usize) {
        for &r in rulers {
            let dist = bfs_distances(g, r, mask);
            for &s in rulers {
                if s != r {
                    assert!(
                        dist[s] >= alpha,
                        "rulers {r},{s} at distance {} < {alpha}",
                        dist[s]
                    );
                }
            }
        }
    }

    #[test]
    fn ruling_set_on_path() {
        let g = gen::path(200);
        let every: Vec<usize> = (0..200).collect();
        let mut ledger = RoundLedger::new();
        let rulers = ruling_set(&g, None, &every, 5, &mut ledger);
        assert!(!rulers.is_empty());
        check_spacing(&g, None, &rulers, 5);
        assert!(ledger.total() > 0);
    }

    #[test]
    fn ruling_set_on_grid_spacing_and_domination() {
        let g = gen::grid(15, 15);
        let every: Vec<usize> = (0..g.n()).collect();
        let mut ledger = RoundLedger::new();
        let alpha = 4;
        let rulers = ruling_set(&g, None, &every, alpha, &mut ledger);
        check_spacing(&g, None, &rulers, alpha);
        // Domination within alpha * ceil(log2 n).
        let beta = alpha * ((g.n() as f64).log2().ceil() as usize);
        let near = super::within_distance(&g, None, &rulers, beta);
        for v in 0..g.n() {
            assert!(near.contains(v), "vertex {v} not dominated");
        }
    }

    #[test]
    fn ruling_forest_structure() {
        let g = gen::grid(12, 12);
        let subset: Vec<usize> = (0..g.n()).step_by(3).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, 6, &mut ledger);
        check_spacing(&g, None, &rf.roots, 6);
        // Every subset vertex is in a tree; depth consistency.
        for &u in &subset {
            assert_ne!(rf.root_of[u], usize::MAX, "subset vertex {u} uncovered");
            // Walk to root.
            let mut v = u;
            let mut steps = 0;
            while rf.parent[v] != v {
                let p = rf.parent[v];
                assert_eq!(rf.depth[p] + 1, rf.depth[v], "depth mismatch at {v}");
                assert_eq!(rf.root_of[p], rf.root_of[v]);
                v = p;
                steps += 1;
                assert!(steps <= rf.max_depth() + 1);
            }
            assert_eq!(v, rf.root_of[u]);
        }
        let bits = (g.n() as f64).log2().ceil() as usize;
        assert!(rf.max_depth() <= 6 * bits);
    }

    #[test]
    fn trees_are_vertex_disjoint() {
        let g = gen::random_tree(150, 4);
        let subset: Vec<usize> = (0..150).step_by(2).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, 8, &mut ledger);
        // root_of is a function: each member belongs to exactly one tree —
        // and tree edges stay within the tree by construction (checked via
        // parent consistency above). Verify member counts add up.
        let total: usize = rf.roots.iter().map(|&r| rf.tree_members(r).len()).sum();
        assert_eq!(total, rf.members().len());
    }

    #[test]
    fn masked_ruling_respects_components() {
        // Two disjoint paths inside one graph via mask.
        let g = gen::path(30);
        let mut mask = VertexSet::full(30);
        mask.remove(15); // split
        let subset: Vec<usize> = (0..30).filter(|&v| v != 15).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, Some(&mask), &subset, 4, &mut ledger);
        // Both halves need at least one root.
        assert!(rf.roots.iter().any(|&r| r < 15));
        assert!(rf.roots.iter().any(|&r| r > 15));
        for &u in &subset {
            assert_ne!(rf.root_of[u], usize::MAX);
            // Tree stays on u's side.
            assert_eq!(rf.root_of[u] < 15, u < 15);
        }
    }

    #[test]
    fn singleton_subset() {
        let g = gen::cycle(10);
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &[7], 3, &mut ledger);
        assert_eq!(rf.roots, vec![7]);
        assert_eq!(rf.depth[7], 0);
    }
}
