//! (α, β)-ruling sets and ruling forests (Awerbuch–Goldberg–Luby–Plotkin
//! \[3\]), the scaffolding of the paper's Lemma 3.2.
//!
//! A *(α, β)-ruling forest* with respect to `U` is a family of disjoint
//! rooted trees covering `U`, whose roots are pairwise at distance ≥ α and
//! whose depth is ≤ β. The deterministic construction splits by identifier
//! bits, processed **bottom-up**: at level `b`, every group of surviving
//! rulers sharing the identifier prefix above bit `b` merges — rulers whose
//! bit `b` is 0 flood a prefix-tagged token to distance α−1, and rulers
//! whose bit `b` is 1 drop out when a token of their own group reaches
//! them. Each of the `⌈log₂ n⌉` levels costs α rounds of token flooding,
//! giving a `(α, α·⌈log₂ n⌉)`-ruling set in `O(α log n)` rounds, exactly as
//! the paper uses it.
//!
//! Everything here is phrased as **per-round steps** — token floods via
//! [`crate::gather::merge_fresh`], the claiming BFS via [`claim_choice`] —
//! simulated round by round. The engine port
//! (`engine::programs::ruling::RulingProgram`) executes the same steps as a
//! `NodeProgram`, so sequential and message-passing runs produce
//! bit-identical rulers, forests, and round charges by construction.

use crate::gather::merge_fresh;
use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// Number of identifier-bit levels both substrates process (and charge):
/// `⌈log₂ n⌉` with a floor of 1.
pub fn ruling_bits(n: usize) -> usize {
    let lead = usize::BITS - n.next_power_of_two().trailing_zeros().max(1);
    (usize::BITS - lead) as usize
}

/// The forest depth bound `β = α · ⌈log₂ n⌉` (floored at one level) used by
/// the claiming and pruning phases — the round budget both substrates
/// spend, and charge, for each of them. Defined via [`ruling_bits`] so the
/// level count and the depth bound can never drift apart.
pub fn ruling_beta(n: usize, alpha: usize) -> usize {
    alpha * ruling_bits(n)
}

/// The deterministic claim choice of one vertex in one BFS round: among the
/// `(root, claiming neighbor)` pairs heard this round, the smallest pair
/// wins. Shared by the sequential claiming simulation and the engine's
/// `RulingProgram`, so ties break identically on both substrates.
pub fn claim_choice(claims: &[(VertexId, VertexId)]) -> Option<(VertexId, VertexId)> {
    claims.iter().copied().min()
}

/// Computes an `(alpha, alpha·⌈log₂ n⌉)`-ruling set of `subset` in
/// `g[mask]`.
///
/// Guarantees: returned vertices are pairwise at distance ≥ `alpha` in
/// `g[mask]`, and every vertex of `subset` is within `alpha·⌈log₂ n⌉` of a
/// returned vertex *in its own masked component*.
///
/// Charges `alpha` rounds per identifier-bit level.
pub fn ruling_set(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    alpha: usize,
    ledger: &mut RoundLedger,
) -> Vec<VertexId> {
    assert!(alpha >= 1, "alpha must be at least 1");
    let bits = ruling_bits(g.n());
    let mut ruler = vec![false; g.n()];
    for &v in subset {
        ruler[v] = true;
    }
    for b in 0..bits {
        rule_level(g, mask, &mut ruler, b, alpha);
    }
    ledger.charge("ruling-set", (alpha as u64) * (bits as u64));
    (0..g.n()).filter(|&v| ruler[v]).collect()
}

/// One bit level of the ruling construction, simulated round by round: the
/// surviving rulers whose bit `b` is 0 inject a token tagged with their
/// prefix `id >> (b + 1)`; tokens flood `g[mask]` for α − 1 hops (one hop
/// per round, [`merge_fresh`] per vertex per round); rulers whose bit `b`
/// is 1 drop out on receiving a token of their own prefix — they were
/// within distance < α of a kept ruler of their group.
fn rule_level(g: &Graph, mask: Option<&VertexSet>, ruler: &mut [bool], b: usize, alpha: usize) {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let mut seen: Vec<Vec<usize>> = vec![Vec::new(); n];
    // Level-local round 1: sources announce their prefix (arriving with
    // round 2's inboxes — distance 1).
    let mut announce: Vec<Vec<usize>> = vec![Vec::new(); n];
    for v in 0..n {
        if ruler[v] && (v >> b) & 1 == 0 {
            let p = v >> (b + 1);
            seen[v].push(p);
            if alpha > 1 {
                announce[v].push(p);
            }
        }
    }
    for k in 2..=alpha {
        let mut next: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in (0..n).filter(|&v| in_mask(v)) {
            let incoming: Vec<&[usize]> = g
                .neighbors(v)
                .iter()
                .filter(|&&w| in_mask(w))
                .map(|&w| announce[w].as_slice())
                .collect();
            let fresh = merge_fresh(&mut seen[v], &incoming);
            // A token arriving in level round k has traveled k − 1 hops;
            // forward only while the next hop stays within distance α − 1.
            if k < alpha {
                next[v] = fresh;
            }
        }
        announce = next;
    }
    for v in 0..n {
        if ruler[v] && (v >> b) & 1 == 1 && seen[v].binary_search(&(v >> (b + 1))).is_ok() {
            ruler[v] = false;
        }
    }
}

/// An (α, β)-ruling forest: disjoint rooted trees covering a target subset.
#[derive(Clone, Debug)]
pub struct RulingForest {
    /// Tree roots (the ruling set), sorted.
    pub roots: Vec<VertexId>,
    /// `parent[v]`: parent in the tree, `v` for roots, `usize::MAX` for
    /// vertices not in any tree.
    pub parent: Vec<usize>,
    /// `root_of[v]`: the root of `v`'s tree (`usize::MAX` outside).
    pub root_of: Vec<usize>,
    /// `depth[v]`: distance to the root within the tree.
    pub depth: Vec<usize>,
    /// The spacing parameter α the forest was built with.
    pub alpha: usize,
}

impl RulingForest {
    /// All tree members (sorted).
    pub fn members(&self) -> Vec<VertexId> {
        (0..self.parent.len())
            .filter(|&v| self.parent[v] != usize::MAX)
            .collect()
    }

    /// Maximum tree depth.
    pub fn max_depth(&self) -> usize {
        self.members()
            .into_iter()
            .map(|v| self.depth[v])
            .max()
            .unwrap_or(0)
    }

    /// Members of the tree rooted at `root`, sorted.
    pub fn tree_members(&self, root: VertexId) -> Vec<VertexId> {
        (0..self.parent.len())
            .filter(|&v| self.root_of[v] == root)
            .collect()
    }
}

/// Builds an `(alpha, alpha·⌈log₂ n⌉)`-ruling forest with respect to
/// `subset` in `g[mask]` (paper's Lemma 3.2 uses `alpha = 2c·log n`).
///
/// Trees consist of the shortest-path parent chains from each `subset`
/// vertex to its nearest ruler (ties by smaller ruler id, then smaller
/// claiming-neighbor id — see [`claim_choice`]), so every tree vertex lies
/// on a path from a `subset` vertex to a root. Rounds: the ruling-set
/// construction plus `β` rounds of claiming BFS plus `β` rounds of chain
/// marking.
///
/// # Panics
///
/// Panics if some `subset` vertex is outside the mask.
///
/// # Examples
///
/// ```
/// use local_model::{ruling_forest, RoundLedger};
/// use graphs::gen;
/// let g = gen::path(64);
/// let every: Vec<usize> = (0..64).collect();
/// let mut ledger = RoundLedger::new();
/// let rf = ruling_forest(&g, None, &every, 4, &mut ledger);
/// assert!(!rf.roots.is_empty());
/// // Roots pairwise ≥ 4 apart on the path.
/// for w in rf.roots.windows(2) {
///     assert!(w[1] - w[0] >= 4);
/// }
/// ```
pub fn ruling_forest(
    g: &Graph,
    mask: Option<&VertexSet>,
    subset: &[VertexId],
    alpha: usize,
    ledger: &mut RoundLedger,
) -> RulingForest {
    let n = g.n();
    for &u in subset {
        assert!(
            mask.is_none_or(|m| m.contains(u)),
            "subset vertex {u} outside mask"
        );
    }
    let roots = ruling_set(g, mask, subset, alpha, ledger);
    let beta = ruling_beta(n, alpha);

    // Claiming BFS from all roots simultaneously, one level per round: the
    // vertices claimed in round d − 1 announce `(their root, their id)`,
    // and an unclaimed vertex joins the smallest announcement it hears
    // ([`claim_choice`] — deterministic tie-breaking).
    let mut dist = vec![usize::MAX; n];
    let mut root_of = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut frontier: Vec<VertexId> = Vec::new();
    for &r in &roots {
        dist[r] = 0;
        root_of[r] = r;
        parent[r] = r;
        frontier.push(r);
    }
    // Per-vertex claim buffers, allocated once and cleared per touched
    // vertex, so every round costs only the frontier's edge neighborhood.
    let mut claims: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); n];
    for d in 1..=beta {
        if frontier.is_empty() {
            break;
        }
        let mut touched: Vec<VertexId> = Vec::new();
        for &u in &frontier {
            for &w in g.neighbors(u) {
                if dist[w] == usize::MAX && mask.is_none_or(|m| m.contains(w)) {
                    if claims[w].is_empty() {
                        touched.push(w);
                    }
                    claims[w].push((root_of[u], u));
                }
            }
        }
        let mut next: Vec<VertexId> = Vec::new();
        for w in touched {
            if let Some((root, p)) = claim_choice(&claims[w]) {
                dist[w] = d;
                root_of[w] = root;
                parent[w] = p;
                next.push(w);
            }
            claims[w].clear();
        }
        frontier = next;
    }
    ledger.charge("ruling-forest-claim", beta as u64);

    // Prune to parent chains from subset vertices.
    let mut keep = VertexSet::new(n);
    for &u in subset {
        debug_assert_ne!(
            root_of[u],
            usize::MAX,
            "ruling-set domination must reach {u} within beta"
        );
        let mut v = u;
        while keep.insert(v) && parent[v] != v {
            v = parent[v];
        }
    }
    for &r in &roots {
        keep.insert(r);
    }
    ledger.charge("ruling-forest-prune", beta as u64);
    let mut depth = vec![usize::MAX; n];
    for v in 0..n {
        if !keep.contains(v) {
            parent[v] = usize::MAX;
            root_of[v] = usize::MAX;
        } else {
            depth[v] = dist[v];
        }
    }
    RulingForest {
        roots,
        parent,
        root_of,
        depth,
        alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{bfs_distances, gen};

    fn check_spacing(g: &Graph, mask: Option<&VertexSet>, rulers: &[VertexId], alpha: usize) {
        for &r in rulers {
            let dist = bfs_distances(g, r, mask);
            for &s in rulers {
                if s != r {
                    assert!(
                        dist[s] >= alpha,
                        "rulers {r},{s} at distance {} < {alpha}",
                        dist[s]
                    );
                }
            }
        }
    }

    /// The set of vertices within distance ≤ `radius` of `sources` in
    /// `g[mask]` (test oracle for domination).
    fn within_distance(
        g: &Graph,
        mask: Option<&VertexSet>,
        sources: &[VertexId],
        radius: usize,
    ) -> VertexSet {
        let mut out = VertexSet::new(g.n());
        for &s in sources {
            for v in graphs::ball(g, s, radius, mask) {
                out.insert(v);
            }
        }
        out
    }

    #[test]
    fn ruling_set_on_path() {
        let g = gen::path(200);
        let every: Vec<usize> = (0..200).collect();
        let mut ledger = RoundLedger::new();
        let rulers = ruling_set(&g, None, &every, 5, &mut ledger);
        assert!(!rulers.is_empty());
        check_spacing(&g, None, &rulers, 5);
        assert!(ledger.total() > 0);
    }

    #[test]
    fn ruling_set_on_grid_spacing_and_domination() {
        let g = gen::grid(15, 15);
        let every: Vec<usize> = (0..g.n()).collect();
        let mut ledger = RoundLedger::new();
        let alpha = 4;
        let rulers = ruling_set(&g, None, &every, alpha, &mut ledger);
        check_spacing(&g, None, &rulers, alpha);
        // Domination within alpha * ceil(log2 n).
        let beta = alpha * ((g.n() as f64).log2().ceil() as usize);
        let near = within_distance(&g, None, &rulers, beta);
        for v in 0..g.n() {
            assert!(near.contains(v), "vertex {v} not dominated");
        }
    }

    #[test]
    fn ruling_charge_uses_bit_levels() {
        let g = gen::path(100);
        let every: Vec<usize> = (0..100).collect();
        let mut ledger = RoundLedger::new();
        ruling_set(&g, None, &every, 3, &mut ledger);
        assert_eq!(
            ledger.phase_total("ruling-set"),
            3 * ruling_bits(100) as u64
        );
    }

    #[test]
    fn ruling_forest_structure() {
        let g = gen::grid(12, 12);
        let subset: Vec<usize> = (0..g.n()).step_by(3).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, 6, &mut ledger);
        check_spacing(&g, None, &rf.roots, 6);
        // Every subset vertex is in a tree; depth consistency.
        for &u in &subset {
            assert_ne!(rf.root_of[u], usize::MAX, "subset vertex {u} uncovered");
            // Walk to root.
            let mut v = u;
            let mut steps = 0;
            while rf.parent[v] != v {
                let p = rf.parent[v];
                assert_eq!(rf.depth[p] + 1, rf.depth[v], "depth mismatch at {v}");
                assert_eq!(rf.root_of[p], rf.root_of[v]);
                v = p;
                steps += 1;
                assert!(steps <= rf.max_depth() + 1);
            }
            assert_eq!(v, rf.root_of[u]);
        }
        let bits = (g.n() as f64).log2().ceil() as usize;
        assert!(rf.max_depth() <= 6 * bits);
    }

    #[test]
    fn trees_are_vertex_disjoint() {
        let g = gen::random_tree(150, 4);
        let subset: Vec<usize> = (0..150).step_by(2).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, 8, &mut ledger);
        // root_of is a function: each member belongs to exactly one tree —
        // and tree edges stay within the tree by construction (checked via
        // parent consistency above). Verify member counts add up.
        let total: usize = rf.roots.iter().map(|&r| rf.tree_members(r).len()).sum();
        assert_eq!(total, rf.members().len());
    }

    #[test]
    fn masked_ruling_respects_components() {
        // Two disjoint paths inside one graph via mask.
        let g = gen::path(30);
        let mut mask = VertexSet::full(30);
        mask.remove(15); // split
        let subset: Vec<usize> = (0..30).filter(|&v| v != 15).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, Some(&mask), &subset, 4, &mut ledger);
        // Both halves need at least one root.
        assert!(rf.roots.iter().any(|&r| r < 15));
        assert!(rf.roots.iter().any(|&r| r > 15));
        for &u in &subset {
            assert_ne!(rf.root_of[u], usize::MAX);
            // Tree stays on u's side.
            assert_eq!(rf.root_of[u] < 15, u < 15);
        }
    }

    #[test]
    fn singleton_subset() {
        let g = gen::cycle(10);
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &[7], 3, &mut ledger);
        assert_eq!(rf.roots, vec![7]);
        assert_eq!(rf.depth[7], 0);
    }
}
