//! The simple randomized distributed list-coloring the paper's §6 remark
//! refers to ("there is a simple answer to Question 6.2 if we ask for a
//! randomized algorithm instead", citing the classic `O(log n)`-round
//! `(Δ+1)`-coloring of \[5\]).
//!
//! Each cycle, every uncolored vertex proposes a uniformly random color
//! from its current list and keeps it if no neighbor proposed or owns the
//! same color; committed colors are struck from neighboring lists. With
//! `|L(v)| ≥ deg(v) + 1` every vertex survives each cycle with probability
//! ≥ 1/4ish, so all vertices finish in `O(log n)` cycles w.h.p. — the
//! contrast experiment for the paper's *deterministic* complexity focus.
//!
//! Two contracts matter for the engine port
//! (`engine::engine_randomized_list_coloring`):
//!
//! * **Per-vertex randomness.** Every vertex draws from its own stream,
//!   [`per_vertex_rng`]`(seed, v)` — a pure function of `(seed, v)`. The
//!   engine seeds node RNGs identically, which is what makes the sequential
//!   and message-passing executions produce bit-identical colorings.
//! * **Two LOCAL rounds per cycle.** In a strict message-passing execution a
//!   cycle costs a *propose* round (random color to all neighbors) and a
//!   *resolve* round (commit decision + committed color to all neighbors):
//!   a vertex can decide its own commit only after hearing the proposals,
//!   and its neighbors learn the outcome one round later. The ledger charges
//!   `2 · cycles` accordingly ([`RandomizedColoring::rounds`] still counts
//!   cycles, the unit `max_rounds` caps).

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};
use rand::rngs::StdRng;
use rand::{mix64, Rng, SeedableRng};

/// The private random stream of vertex `v` under `seed` — the determinism
/// contract shared with the engine runtime (`engine::node_rng`): a pure
/// function of `(seed, v)`, independent of iteration order and sharding.
pub fn per_vertex_rng(seed: u64, v: VertexId) -> StdRng {
    StdRng::seed_from_u64(mix64(seed, v as u64))
}

/// Outcome of the randomized list-coloring.
#[derive(Clone, Debug)]
pub struct RandomizedColoring {
    /// Final colors (`usize::MAX` only if `max_rounds` was exhausted).
    pub colors: Vec<usize>,
    /// Propose/resolve cycles actually used (each costs 2 LOCAL rounds).
    pub rounds: u64,
    /// Whether every vertex committed.
    pub complete: bool,
}

/// Runs the randomized list-coloring. Requires `|lists[v]| ≥ deg(v) + 1`
/// for every masked vertex (the `(deg+1)`-list-coloring regime of §6).
///
/// # Panics
///
/// Panics if some list is smaller than `deg(v) + 1`.
pub fn randomized_list_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    lists: &[Vec<usize>],
    seed: u64,
    max_rounds: u64,
    ledger: &mut RoundLedger,
) -> RandomizedColoring {
    let n = g.n();
    assert_eq!(lists.len(), n);
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    for (v, list) in lists.iter().enumerate() {
        if in_mask(v) {
            let deg = g.neighbors(v).iter().filter(|&&w| in_mask(w)).count();
            assert!(
                list.len() > deg,
                "vertex {v}: randomized coloring needs deg+1 lists"
            );
        }
    }
    let mut rngs: Vec<StdRng> = (0..n).map(|v| per_vertex_rng(seed, v)).collect();
    let mut live: Vec<Vec<usize>> = lists.to_vec();
    let mut colors = vec![usize::MAX; n];
    let mut uncolored: Vec<VertexId> = (0..n).filter(|&v| in_mask(v)).collect();
    let mut rounds = 0u64;
    while !uncolored.is_empty() && rounds < max_rounds {
        rounds += 1;
        // Propose.
        let mut proposal = vec![usize::MAX; n];
        for &v in &uncolored {
            proposal[v] = live[v][rngs[v].gen_range(0..live[v].len())];
        }
        // Commit where no conflict (symmetric rule: ties kill both).
        let mut committed: Vec<VertexId> = Vec::new();
        for &v in &uncolored {
            let p = proposal[v];
            let conflict = g
                .neighbors(v)
                .iter()
                .any(|&w| in_mask(w) && (proposal[w] == p || colors[w] == p));
            if !conflict {
                committed.push(v);
            }
        }
        for &v in &committed {
            colors[v] = proposal[v];
            for &w in g.neighbors(v) {
                if in_mask(w) && colors[w] == usize::MAX {
                    if let Some(pos) = live[w].iter().position(|&c| c == colors[v]) {
                        live[w].remove(pos);
                    }
                }
            }
        }
        uncolored.retain(|&v| colors[v] == usize::MAX);
    }
    // Propose + resolve: two LOCAL rounds per cycle (see module docs).
    ledger.charge("randomized-coloring", 2 * rounds);
    RandomizedColoring {
        colors,
        rounds,
        complete: uncolored.is_empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn deg_plus_one_lists(g: &Graph, palette_slack: usize) -> Vec<Vec<usize>> {
        g.vertices()
            .map(|v| (0..g.degree(v) + 1 + palette_slack).collect())
            .collect()
    }

    #[test]
    fn colors_random_regular_fast() {
        for seed in 0..5u64 {
            let g = gen::random_regular(300, 4, seed);
            let lists = deg_plus_one_lists(&g, 0);
            let mut ledger = RoundLedger::new();
            let out = randomized_list_coloring(&g, None, &lists, seed, 200, &mut ledger);
            assert!(out.complete, "seed {seed} did not finish");
            for (u, v) in g.edges() {
                assert_ne!(out.colors[u], out.colors[v]);
            }
            // O(log n): 300 vertices should finish well under 60 cycles.
            assert!(out.rounds <= 60, "took {} rounds", out.rounds);
            assert_eq!(ledger.phase_total("randomized-coloring"), 2 * out.rounds);
        }
    }

    #[test]
    fn respects_lists() {
        let g = gen::grid(8, 8);
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (10 * v..10 * v + g.degree(v) + 1).collect())
            .collect();
        let mut ledger = RoundLedger::new();
        let out = randomized_list_coloring(&g, None, &lists, 7, 500, &mut ledger);
        assert!(out.complete);
        for v in g.vertices() {
            assert!(lists[v].contains(&out.colors[v]));
        }
    }

    #[test]
    fn round_budget_respected() {
        let g = gen::random_regular(100, 3, 1);
        let lists = deg_plus_one_lists(&g, 0);
        let mut ledger = RoundLedger::new();
        let out = randomized_list_coloring(&g, None, &lists, 1, 1, &mut ledger);
        assert_eq!(out.rounds, 1);
        // One cycle rarely finishes a 100-vertex graph — either way the
        // partial coloring must be proper where committed.
        for (u, v) in g.edges() {
            if out.colors[u] != usize::MAX && out.colors[v] != usize::MAX {
                assert_ne!(out.colors[u], out.colors[v]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "deg+1")]
    fn tight_lists_rejected() {
        let g = gen::cycle(6);
        let lists = vec![vec![0, 1]; 6];
        let mut ledger = RoundLedger::new();
        randomized_list_coloring(&g, None, &lists, 1, 10, &mut ledger);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::random_tree(60, 2);
        let lists = deg_plus_one_lists(&g, 1);
        let mut l1 = RoundLedger::new();
        let mut l2 = RoundLedger::new();
        let a = randomized_list_coloring(&g, None, &lists, 42, 100, &mut l1);
        let b = randomized_list_coloring(&g, None, &lists, 42, 100, &mut l2);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn per_vertex_streams_are_stable() {
        let mut a = per_vertex_rng(5, 17);
        let mut b = per_vertex_rng(5, 17);
        let mut c = per_vertex_rng(5, 18);
        let draws_a: Vec<u64> = (0..4).map(|_| a.gen_range(0u64..1 << 40)).collect();
        let draws_b: Vec<u64> = (0..4).map(|_| b.gen_range(0u64..1 << 40)).collect();
        let draws_c: Vec<u64> = (0..4).map(|_| c.gen_range(0u64..1 << 40)).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }
}
