//! The Barenboim–Elkin sparse-graph coloring baseline \[4\].
//!
//! `⌊(2+ε)a⌋ + 1` colors for graphs of arboricity `a` in `O(a log n)`-ish
//! rounds, via the **H-partition**: repeatedly strip the vertices whose
//! residual degree is at most `(2+ε)a` — at least an `ε/(2+ε)` fraction each
//! time, so `O(log n)` layers suffice — then orient edges toward higher
//! layers, split each layer's internal edges into rooted forests, Cole–
//! Vishkin them, and sweep layers from the top so every vertex sees at most
//! `⌊(2+ε)a⌋` colored neighbors when its turn comes.
//!
//! This is the algorithm the paper improves upon by at least one color
//! (§1.3, §1.5); experiment E2 reproduces the comparison.

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// The H-partition of Barenboim–Elkin: layer `i` holds the vertices whose
/// degree into layers `≥ i` is at most `threshold`.
#[derive(Clone, Debug)]
pub struct HPartition {
    /// `layer[v]`, with `usize::MAX` for vertices outside the mask.
    pub layer: Vec<usize>,
    /// Number of layers.
    pub layers: usize,
    /// The degree threshold `⌊(2+ε)·a⌋` used.
    pub threshold: usize,
}

/// Computes the H-partition with threshold `⌊(2+ε)·a⌋`.
///
/// One LOCAL round per layer (each vertex needs only its residual degree),
/// charged as `"h-partition"`.
///
/// # Panics
///
/// Panics if the partition stalls, i.e. some residual subgraph has minimum
/// degree above the threshold — which certifies `arboricity > a` via
/// Nash-Williams (every subgraph of an arboricity-`a` graph has average
/// degree < 2a, hence a vertex of degree ≤ (2+ε)a).
pub fn h_partition(
    g: &Graph,
    mask: Option<&VertexSet>,
    a: usize,
    epsilon: f64,
    ledger: &mut RoundLedger,
) -> HPartition {
    assert!(a >= 1, "arboricity parameter must be positive");
    assert!(epsilon > 0.0, "epsilon must be positive");
    let threshold = ((2.0 + epsilon) * a as f64).floor() as usize;
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let mut layer = vec![usize::MAX; n];
    let mut remaining: Vec<VertexId> = (0..n).filter(|&v| in_mask(v)).collect();
    let mut deg: Vec<usize> = vec![0; n];
    for &v in &remaining {
        deg[v] = g.neighbors(v).iter().filter(|&&w| in_mask(w)).count();
    }
    let mut current = 0usize;
    let mut rounds = 0u64;
    while !remaining.is_empty() {
        rounds += 1;
        let peel: Vec<VertexId> = remaining
            .iter()
            .copied()
            .filter(|&v| deg[v] <= threshold)
            .collect();
        assert!(
            !peel.is_empty(),
            "H-partition stalled: arboricity exceeds {a} (threshold {threshold})"
        );
        for &v in &peel {
            layer[v] = current;
        }
        for &v in &peel {
            for &w in g.neighbors(v) {
                if in_mask(w) && layer[w] == usize::MAX {
                    deg[w] -= 1;
                }
            }
        }
        remaining.retain(|&v| layer[v] == usize::MAX);
        current += 1;
    }
    ledger.charge("h-partition", rounds);
    HPartition {
        layer,
        layers: current,
        threshold,
    }
}

/// The full Barenboim–Elkin coloring: `threshold + 1 = ⌊(2+ε)a⌋ + 1` colors.
///
/// Returns `color[v]` (`usize::MAX` outside the mask). Rounds are charged
/// for the H-partition, per-layer Cole–Vishkin forests (run in parallel
/// across layers — charged once at the maximum), and the final layer sweep.
///
/// # Examples
///
/// ```
/// use local_model::{barenboim_elkin_coloring, RoundLedger};
/// use graphs::gen;
/// let g = gen::forest_union(60, 2, 5); // arboricity ≤ 2
/// let mut ledger = RoundLedger::new();
/// let col = barenboim_elkin_coloring(&g, None, 2, 1.0, &mut ledger);
/// for (u, v) in g.edges() {
///     assert_ne!(col[u], col[v]);
/// }
/// // (2+1)·2 + 1 = 7 colors.
/// assert!(col.iter().all(|&c| c < 7));
/// ```
pub fn barenboim_elkin_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    a: usize,
    epsilon: f64,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let hp = h_partition(g, mask, a, epsilon, ledger);
    let palette = hp.threshold + 1;

    // Internal coloring of each layer's induced subgraph, all layers in
    // parallel (they are vertex-disjoint): orient by id, decompose, CV,
    // merge-reduce to `palette` colors. We reuse the generic machinery by
    // running it per layer on the layer mask but charge only the maximum
    // rounds across layers (parallel composition).
    let mut internal = vec![usize::MAX; n];
    let mut max_layer_rounds = 0u64;
    for l in 0..hp.layers {
        let members: Vec<VertexId> = (0..n).filter(|&v| in_mask(v) && hp.layer[v] == l).collect();
        if members.is_empty() {
            continue;
        }
        let layer_mask = VertexSet::from_iter_with_universe(n, members.iter().copied());
        let mut sub_ledger = RoundLedger::new();
        // Within a layer every vertex has ≤ threshold same-or-higher
        // neighbors, hence ≤ threshold same-layer neighbors: palette works.
        let col = crate::reduce::coloring_by_forest_merge(
            g,
            Some(&layer_mask),
            &vec![0; n],
            palette,
            &mut sub_ledger,
        );
        for &v in &members {
            internal[v] = col[v];
        }
        max_layer_rounds = max_layer_rounds.max(sub_ledger.total());
    }
    ledger.charge("layer-internal-coloring", max_layer_rounds);

    // Final sweep: layers from top to bottom; inside a layer, internal color
    // classes one per round. Every vertex sees ≤ threshold already-colored
    // neighbors (same-layer earlier classes + higher layers), so a color in
    // 0..palette is free.
    let mut color = vec![usize::MAX; n];
    let mut sweep_rounds = 0u64;
    for l in (0..hp.layers).rev() {
        for class in 0..palette {
            sweep_rounds += 1;
            for v in 0..n {
                if !in_mask(v) || hp.layer[v] != l || internal[v] != class {
                    continue;
                }
                let used: Vec<usize> = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| in_mask(w))
                    .map(|&w| color[w])
                    .collect();
                color[v] = (0..palette)
                    .find(|c| !used.contains(c))
                    .expect("≤ threshold colored neighbors by H-partition");
            }
        }
    }
    ledger.charge("layer-sweep", sweep_rounds);
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn h_partition_covers_and_bounds_updegree() {
        let g = gen::forest_union(80, 3, 11);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, None, 3, 0.5, &mut ledger);
        assert!(hp.layers >= 1);
        for v in 0..g.n() {
            assert_ne!(hp.layer[v], usize::MAX);
            let up = g
                .neighbors(v)
                .iter()
                .filter(|&&w| hp.layer[w] >= hp.layer[v])
                .count();
            assert!(up <= hp.threshold, "vertex {v} has {up} up-neighbors");
        }
        assert_eq!(ledger.phase_total("h-partition"), hp.layers as u64);
    }

    #[test]
    fn h_partition_layer_count_logarithmic() {
        // epsilon = 1: each layer removes ≥ 1/3 of the residual graph, so
        // layers ≤ log_{3/2}(n) + 1.
        let g = gen::forest_union(500, 2, 3);
        let mut ledger = RoundLedger::new();
        let hp = h_partition(&g, None, 2, 1.0, &mut ledger);
        let bound = ((500f64).ln() / (1.5f64).ln()).ceil() as usize + 1;
        assert!(hp.layers <= bound, "{} layers > bound {bound}", hp.layers);
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn h_partition_rejects_dense_graphs() {
        // K10 has arboricity 5; claiming a=1 with small epsilon must stall.
        let g = gen::complete(10);
        let mut ledger = RoundLedger::new();
        h_partition(&g, None, 1, 0.1, &mut ledger);
    }

    #[test]
    fn be_coloring_proper_with_claimed_palette() {
        for (a, eps, seed) in [(2usize, 1.0, 1u64), (3, 0.5, 2), (4, 0.25, 3)] {
            let g = gen::forest_union(120, a, seed);
            let mut ledger = RoundLedger::new();
            let col = barenboim_elkin_coloring(&g, None, a, eps, &mut ledger);
            let palette = ((2.0 + eps) * a as f64).floor() as usize + 1;
            for (u, v) in g.edges() {
                assert_ne!(col[u], col[v]);
            }
            assert!(col.iter().all(|&c| c < palette));
        }
    }

    #[test]
    fn be_on_tree_uses_few_colors() {
        let g = gen::random_tree(200, 9);
        let mut ledger = RoundLedger::new();
        let col = barenboim_elkin_coloring(&g, None, 1, 1.0, &mut ledger);
        // (2+1)·1 + 1 = 4 colors.
        assert!(col.iter().all(|&c| c < 4));
        for (u, v) in g.edges() {
            assert_ne!(col[u], col[v]);
        }
    }

    #[test]
    fn be_masked() {
        let g = gen::triangular(6, 6);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).step_by(2));
        let mut ledger = RoundLedger::new();
        let col = barenboim_elkin_coloring(&g, Some(&mask), 3, 1.0, &mut ledger);
        for (u, v) in g.edges() {
            if mask.contains(u) && mask.contains(v) {
                assert_ne!(col[u], col[v]);
            }
        }
        for (v, &c) in col.iter().enumerate() {
            if !mask.contains(v) {
                assert_eq!(c, usize::MAX, "vertex {v}");
            }
        }
    }
}
