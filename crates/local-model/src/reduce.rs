//! Color-space reduction: from forest 3-colorings to a `(Δ+1)`-coloring.
//!
//! The merge-reduce scheme (Goldberg–Plotkin–Shannon \[17\] / Panconesi–Rizzi
//! style): maintain a proper coloring of the union of the first `j` forests;
//! to merge forest `j+1`, take the product with its Cole–Vishkin 3-coloring
//! (proper on the enlarged union) and sweep the product classes from the
//! top, recoloring each class greedily into `0..target`. Classes are
//! independent sets of the union, so each sweep step is one LOCAL round.

use crate::cole_vishkin::{cole_vishkin_3color, RootedForest};
use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// Reduces a proper coloring of `g[mask]` to use colors `0..target`.
///
/// `union_edges(v)` must yield, for each vertex, its neighbors in the
/// subgraph on which `coloring` is currently proper (and on which the
/// result must stay proper). `target` must exceed the maximum degree of
/// that subgraph.
///
/// One LOCAL round per color class in `current_colors..target`, plus one
/// announce round — after a local product recoloring each vertex must tell
/// its union-neighbors the new color before the top class can sweep
/// (charged as `"class-sweep"`; the engine port executes exactly these
/// rounds, see `engine::engine_degree_plus_one_coloring`).
fn sweep_reduce(
    members: &[VertexId],
    neighbors_of: impl Fn(VertexId) -> Vec<VertexId>,
    coloring: &mut [usize],
    current_colors: usize,
    target: usize,
    ledger: &mut RoundLedger,
) {
    if current_colors <= target {
        return;
    }
    for class in (target..current_colors).rev() {
        for &v in members {
            if coloring[v] != class {
                continue;
            }
            let used: Vec<usize> = neighbors_of(v).iter().map(|&w| coloring[w]).collect();
            let fresh = (0..target)
                .find(|c| !used.contains(c))
                .expect("target exceeds degree, a free color exists");
            coloring[v] = fresh;
        }
    }
    ledger.charge("class-sweep", (current_colors - target + 1) as u64);
}

/// Computes a proper `target`-coloring of `g[mask]` by decomposing into
/// rooted forests (via the given acyclic `priority`), 3-coloring each with
/// Cole–Vishkin, and merge-reducing.
///
/// # Panics
///
/// Panics if `target <= max_degree(g[mask])` — a free color could run out.
///
/// Round complexity: `O(#forests · (target + log* n))`; with the identity
/// priority this is the classic `O(Δ² + log* n)` of Panconesi–Rizzi, the
/// "(d+1)-coloring computed deterministically" step the paper takes
/// from \[17\] in Lemma 3.2.
///
/// Returns `color[v] ∈ 0..target` for masked vertices, `usize::MAX`
/// elsewhere.
///
/// # Examples
///
/// ```
/// use local_model::{degree_plus_one_coloring, RoundLedger};
/// use graphs::gen;
/// let g = gen::random_regular(30, 4, 7);
/// let mut ledger = RoundLedger::new();
/// let col = degree_plus_one_coloring(&g, None, &mut ledger);
/// for (u, v) in g.edges() {
///     assert_ne!(col[u], col[v]);
/// }
/// assert!(col.iter().all(|&c| c < 5));
/// ```
pub fn coloring_by_forest_merge(
    g: &Graph,
    mask: Option<&VertexSet>,
    priority: &[usize],
    target: usize,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let members: Vec<VertexId> = (0..n).filter(|&v| in_mask(v)).collect();
    let max_deg = members
        .iter()
        .map(|&v| g.neighbors(v).iter().filter(|&&w| in_mask(w)).count())
        .max()
        .unwrap_or(0);
    assert!(
        target > max_deg,
        "target ({target}) must exceed the masked maximum degree ({max_deg})"
    );

    let orientation = crate::forests::Orientation::by_priority(g, mask, priority);
    let forests: Vec<RootedForest> = orientation.forest_decomposition(mask, ledger);

    let mut color = vec![usize::MAX; n];
    // Union adjacency grows as forests merge.
    let mut union_adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];

    let mut current_colors = 1usize; // all-uncolored start: treat as 1 dummy color
    for (fi, forest) in forests.iter().enumerate() {
        let f3 = cole_vishkin_3color(forest, ledger);
        // Extend the union with this forest's edges.
        for &v in &members {
            let p = forest.parent(v);
            if p != usize::MAX && p != v {
                union_adj[v].push(p);
                union_adj[p].push(v);
            }
        }
        if fi == 0 {
            for &v in &members {
                color[v] = f3[v];
            }
            current_colors = 3;
        } else {
            // Product coloring: 3 * old + forest color; proper on the union.
            for &v in &members {
                color[v] = 3 * color[v] + f3[v];
            }
            current_colors *= 3;
        }
        // Reduce back to `target` (skip when already small).
        let adj = &union_adj;
        sweep_reduce(
            &members,
            |v| adj[v].clone(),
            &mut color,
            current_colors,
            target,
            ledger,
        );
        current_colors = current_colors.min(target).max(
            color
                .iter()
                .filter(|&&c| c != usize::MAX)
                .max()
                .map_or(0, |&c| c + 1),
        );
    }
    if members.is_empty() {
        return color;
    }
    if forests.is_empty() {
        // Edgeless subgraph: everyone takes color 0.
        for &v in &members {
            color[v] = 0;
        }
    }
    debug_assert!(members.iter().all(|&v| color[v] < target));
    color
}

/// The classic `(Δ+1)`-coloring of `g[mask]` in `O(Δ² + log* n)` rounds
/// (orientation by id). See [`coloring_by_forest_merge`].
pub fn degree_plus_one_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let max_deg = (0..g.n())
        .filter(|&v| in_mask(v))
        .map(|v| g.neighbors(v).iter().filter(|&&w| in_mask(w)).count())
        .max()
        .unwrap_or(0);
    coloring_by_forest_merge(g, mask, &vec![0; g.n()], max_deg + 1, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    fn assert_proper_masked(g: &Graph, mask: Option<&VertexSet>, col: &[usize], bound: usize) {
        for (u, v) in g.edges() {
            let inu = mask.is_none_or(|m| m.contains(u));
            let inv = mask.is_none_or(|m| m.contains(v));
            if inu && inv {
                assert_ne!(col[u], col[v], "edge ({u},{v})");
            }
        }
        for (v, &c) in col.iter().enumerate() {
            if mask.is_none_or(|m| m.contains(v)) {
                assert!(c < bound, "vertex {v}: color {c} out of bound {bound}");
            } else {
                assert_eq!(c, usize::MAX, "vertex {v}");
            }
        }
    }

    #[test]
    fn colors_regular_graphs() {
        for (n, d, seed) in [(20, 3, 1), (40, 4, 2), (60, 6, 3)] {
            let g = gen::random_regular(n, d, seed);
            let mut ledger = RoundLedger::new();
            let col = degree_plus_one_coloring(&g, None, &mut ledger);
            assert_proper_masked(&g, None, &col, d + 1);
            assert!(ledger.total() > 0);
        }
    }

    #[test]
    fn colors_grid() {
        let g = gen::grid(8, 8);
        let mut ledger = RoundLedger::new();
        let col = degree_plus_one_coloring(&g, None, &mut ledger);
        assert_proper_masked(&g, None, &col, 5);
    }

    #[test]
    fn colors_masked_subgraph() {
        let g = gen::complete(8);
        let mask = VertexSet::from_iter_with_universe(8, [0, 2, 4, 6]);
        let mut ledger = RoundLedger::new();
        let col = degree_plus_one_coloring(&g, Some(&mask), &mut ledger);
        assert_proper_masked(&g, Some(&mask), &col, 4);
    }

    #[test]
    fn edgeless_graph_single_color() {
        let g = Graph::empty(5);
        let mut ledger = RoundLedger::new();
        let col = degree_plus_one_coloring(&g, None, &mut ledger);
        assert!(col.iter().all(|&c| c == 0));
    }

    #[test]
    fn custom_target_above_degree() {
        let g = gen::cycle(9);
        let mut ledger = RoundLedger::new();
        let col = coloring_by_forest_merge(&g, None, &[0; 9], 4, &mut ledger);
        assert_proper_masked(&g, None, &col, 4);
    }

    #[test]
    #[should_panic]
    fn target_at_degree_panics() {
        let g = gen::cycle(9);
        let mut ledger = RoundLedger::new();
        coloring_by_forest_merge(&g, None, &[0; 9], 2, &mut ledger);
    }

    #[test]
    fn round_complexity_scales_with_degree_not_n() {
        // For fixed degree, rounds should grow (at most) like log* n — i.e.
        // barely at all. Compare n=64 and n=4096 paths.
        let small = gen::path(64);
        let large = gen::path(4096);
        let mut ls = RoundLedger::new();
        let mut ll = RoundLedger::new();
        degree_plus_one_coloring(&small, None, &mut ls);
        degree_plus_one_coloring(&large, None, &mut ll);
        assert!(ll.total() <= ls.total() + 4, "rounds must not grow with n");
    }
}
