//! Radius-`r` ball gathering and the paper's two-round clique detection,
//! expressed as **pure per-round step functions**.
//!
//! In the LOCAL model, "every vertex learns its radius-`r` ball" is exactly
//! `r` rounds of neighborhood flooding (all vertices in parallel), and §3's
//! `(d+1)`-clique detection is a two-round handshake (exchange adjacency
//! lists, then decide locally). Both are factored here into the per-round
//! node logic — [`merge_fresh`] for one flooding step, [`clique_at_apex`]
//! for the apex-local clique decision — and the sequential entry points
//! ([`gather_balls`], [`detect_clique`]) *simulate* those steps round by
//! round. The engine ports (`engine::programs::gather`) run the very same
//! functions inside `NodeProgram`s, so the two substrates cannot drift:
//! equal inputs produce bit-identical balls and cliques by construction.

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// One flooding round for one node: merge the batches announced by its
/// neighbors last round into `known` (kept sorted), returning the fresh
/// elements — sorted, deduplicated — that the node announces next round.
///
/// This is the shared step of every set-flooding protocol in the stack
/// (radius-`r` ball gathers, the ruling construction's prefix tokens):
/// iterating it `r` times from `known = {v}` yields exactly `B^r(v)`.
pub fn merge_fresh<T: Ord + Copy>(known: &mut Vec<T>, incoming: &[&[T]]) -> Vec<T> {
    let mut fresh: Vec<T> = incoming
        .iter()
        .flat_map(|batch| batch.iter().copied())
        .filter(|x| known.binary_search(x).is_err())
        .collect();
    fresh.sort_unstable();
    fresh.dedup();
    if !fresh.is_empty() {
        // Backward two-pointer merge of the two sorted, disjoint runs —
        // linear, in place, no re-sort (this step runs once per vertex per
        // flood round, so it is the whole protocol's hot path).
        let old_len = known.len();
        known.extend(fresh.iter().copied());
        let mut a = old_len;
        let mut b = fresh.len();
        for w in (0..known.len()).rev() {
            if b == 0 {
                break;
            }
            if a > 0 && known[a - 1] > fresh[b - 1] {
                known[w] = known[a - 1];
                a -= 1;
            } else {
                known[w] = fresh[b - 1];
                b -= 1;
            }
        }
    }
    fresh
}

/// Gathers `B^r_mask(v)` for every vertex in `centers`, charging `r` LOCAL
/// rounds (one parallel flood). Balls follow the paper's convention: the
/// ball of a vertex outside the mask is empty.
///
/// Executed as a round-by-round simulation of the flooding protocol — the
/// same [`merge_fresh`] step the engine's `GatherProgram` runs — so the
/// engine port reproduces these balls bit for bit.
pub fn gather_balls(
    g: &Graph,
    mask: Option<&VertexSet>,
    centers: &[VertexId],
    radius: usize,
    ledger: &mut RoundLedger,
) -> Vec<Vec<VertexId>> {
    ledger.charge("ball-gather", radius as u64);
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    // Round 0 (free wake-up): every live vertex knows — and announces —
    // itself.
    let mut known: Vec<Vec<VertexId>> = (0..n)
        .map(|v| if in_mask(v) { vec![v] } else { Vec::new() })
        .collect();
    let mut announce = known.clone();
    for _ in 0..radius {
        let mut next: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        for v in (0..n).filter(|&v| in_mask(v)) {
            let incoming: Vec<&[VertexId]> = g
                .neighbors(v)
                .iter()
                .filter(|&&w| in_mask(w))
                .map(|&w| announce[w].as_slice())
                .collect();
            next[v] = merge_fresh(&mut known[v], &incoming);
        }
        announce = next;
    }
    centers
        .iter()
        .map(|&c| {
            if in_mask(c) {
                known[c].clone()
            } else {
                Vec::new()
            }
        })
        .collect()
}

/// The apex-local half of the two-round clique detection: decides whether
/// `apex` together with `d` of its (live) neighbors forms a `(d+1)`-clique,
/// using only knowledge a node holds after the adjacency-list exchange —
/// each neighbor's live degree and the edges among its own neighbors.
///
/// `nbrs` is the apex's live neighborhood (sorted); `live_degree(w)` is the
/// live degree of neighbor `w`; `has_edge(u, w)` answers adjacency for
/// `u, w ∈ nbrs`. Returns the clique sorted, apex included.
///
/// Shared by the sequential [`detect_clique`] scan and the engine's
/// `CliqueProgram`, so both substrates find the same clique at every apex.
pub fn clique_at_apex(
    apex: VertexId,
    nbrs: &[VertexId],
    d: usize,
    live_degree: impl Fn(VertexId) -> usize,
    has_edge: impl Fn(VertexId, VertexId) -> bool,
) -> Option<Vec<VertexId>> {
    if nbrs.len() < d {
        return None;
    }
    // The apex plus d of its neighbors must be mutually adjacent; candidates
    // need degree ≥ d themselves.
    let candidates: Vec<VertexId> = nbrs
        .iter()
        .copied()
        .filter(|&w| live_degree(w) >= d)
        .collect();
    if candidates.len() < d {
        return None;
    }
    grow_clique(&has_edge, &candidates, d).map(|mut clique| {
        clique.push(apex);
        clique.sort_unstable();
        clique
    })
}

/// Charges the two rounds the paper's §3 allots for local `(d+1)`-clique
/// detection ("such a clique can be found in two rounds") and scans each
/// rich vertex's closed neighborhood for a `(d+1)`-clique containing it.
///
/// Only vertices of degree exactly `d` can be in a `(d+1)`-clique of a
/// graph where we treat degree-≤-d vertices; the check is
/// `O(Σ d³)` worst case but early-exits aggressively. The per-apex decision
/// is [`clique_at_apex`] — the same function the engine's two-round port
/// evaluates on exchanged adjacency lists.
pub fn detect_clique(
    g: &Graph,
    mask: Option<&VertexSet>,
    d: usize,
    ledger: &mut RoundLedger,
) -> Option<Vec<VertexId>> {
    ledger.charge("clique-detection", 2);
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    for v in g.vertices().filter(|&v| in_mask(v)) {
        let nbrs: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| in_mask(w))
            .collect();
        let clique = clique_at_apex(
            v,
            &nbrs,
            d,
            |w| g.neighbors(w).iter().filter(|&&x| in_mask(x)).count(),
            |u, w| g.has_edge(u, w),
        );
        if clique.is_some() {
            return clique;
        }
    }
    None
}

/// Finds `size` mutually adjacent vertices among `candidates`
/// (backtracking; candidates all adjacent to the apex already).
fn grow_clique(
    has_edge: &impl Fn(VertexId, VertexId) -> bool,
    candidates: &[VertexId],
    size: usize,
) -> Option<Vec<VertexId>> {
    fn rec(
        has_edge: &impl Fn(VertexId, VertexId) -> bool,
        candidates: &[VertexId],
        start: usize,
        current: &mut Vec<VertexId>,
        size: usize,
    ) -> bool {
        if current.len() == size {
            return true;
        }
        if candidates.len() - start < size - current.len() {
            return false;
        }
        for i in start..candidates.len() {
            let w = candidates[i];
            if current.iter().all(|&u| has_edge(u, w)) {
                current.push(w);
                if rec(has_edge, candidates, i + 1, current, size) {
                    return true;
                }
                current.pop();
            }
        }
        false
    }
    let mut cur = Vec::new();
    rec(has_edge, candidates, 0, &mut cur, size).then_some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn gather_charges_radius() {
        let g = gen::grid(5, 5);
        let mut ledger = RoundLedger::new();
        let balls = gather_balls(&g, None, &[12], 2, &mut ledger);
        assert_eq!(ledger.phase_total("ball-gather"), 2);
        assert!(balls[0].contains(&12));
        assert!(balls[0].len() > 5);
    }

    #[test]
    fn flooded_balls_match_bfs_balls() {
        // The round-by-round simulation must reproduce the direct BFS ball
        // at every radius, masked or not.
        let g = gen::triangular(5, 5);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 4 != 1));
        let centers: Vec<VertexId> = (0..g.n()).collect();
        for mask in [None, Some(&mask)] {
            for radius in 0..4 {
                let mut ledger = RoundLedger::new();
                let balls = gather_balls(&g, mask, &centers, radius, &mut ledger);
                for &c in &centers {
                    assert_eq!(
                        balls[c],
                        graphs::ball(&g, c, radius, mask),
                        "center {c} radius {radius}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_fresh_keeps_known_sorted_and_returns_only_new() {
        let mut known = vec![2usize, 5, 9];
        let fresh = merge_fresh(&mut known, &[&[1, 5, 7], &[7, 9, 11]]);
        assert_eq!(fresh, vec![1, 7, 11]);
        assert_eq!(known, vec![1, 2, 5, 7, 9, 11]);
        let none = merge_fresh(&mut known, &[&[2, 11]]);
        assert!(none.is_empty());
    }

    #[test]
    fn clique_detection_finds_k4() {
        // K4 glued into a path.
        let mut edges: Vec<(usize, usize)> = (0..10).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 2), (0, 3), (1, 3)]);
        let g = graphs::Graph::from_edges(11, edges);
        let mut ledger = RoundLedger::new();
        let clique = detect_clique(&g, None, 3, &mut ledger).expect("K4 present");
        assert_eq!(clique, vec![0, 1, 2, 3]);
        assert_eq!(ledger.phase_total("clique-detection"), 2);
    }

    #[test]
    fn clique_detection_none_in_sparse() {
        let g = gen::grid(6, 6);
        let mut ledger = RoundLedger::new();
        assert!(detect_clique(&g, None, 3, &mut ledger).is_none());
    }

    #[test]
    fn clique_detection_respects_mask() {
        let g = gen::complete(5);
        let mut mask = VertexSet::full(5);
        mask.remove(4); // K4 remains
        let mut ledger = RoundLedger::new();
        assert!(detect_clique(&g, Some(&mask), 4, &mut ledger).is_none());
        assert!(detect_clique(&g, Some(&mask), 3, &mut ledger).is_some());
    }
}
