//! Radius-`r` ball gathering with faithful round charging.
//!
//! In the LOCAL model, "every vertex learns its radius-`r` ball" is exactly
//! `r` rounds of neighborhood flooding (all vertices in parallel). We
//! compute the balls centrally — identical output, no message
//! materialization — and charge `r` rounds once per parallel gather, which
//! is the honest LOCAL cost (see DESIGN.md, substitutions).

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// Gathers `B^r_mask(v)` for every vertex in `centers`, charging `r` LOCAL
/// rounds (one parallel flood). Balls follow the paper's convention: the
/// ball of a vertex outside the mask is empty.
pub fn gather_balls(
    g: &Graph,
    mask: Option<&VertexSet>,
    centers: &[VertexId],
    radius: usize,
    ledger: &mut RoundLedger,
) -> Vec<Vec<VertexId>> {
    ledger.charge("ball-gather", radius as u64);
    centers
        .iter()
        .map(|&c| graphs::ball(g, c, radius, mask))
        .collect()
}

/// Charges the two rounds the paper's §3 allots for local `(d+1)`-clique
/// detection ("such a clique can be found in two rounds") and scans each
/// rich vertex's closed neighborhood for a `(d+1)`-clique containing it.
///
/// Only vertices of degree exactly `d` can be in a `(d+1)`-clique of a
/// graph where we treat degree-≤-d vertices; the check is
/// `O(Σ d³)` worst case but early-exits aggressively.
pub fn detect_clique(
    g: &Graph,
    mask: Option<&VertexSet>,
    d: usize,
    ledger: &mut RoundLedger,
) -> Option<Vec<VertexId>> {
    ledger.charge("clique-detection", 2);
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    for v in g.vertices().filter(|&v| in_mask(v)) {
        let nbrs: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| in_mask(w))
            .collect();
        if nbrs.len() < d {
            continue;
        }
        // v plus d of its neighbors must be mutually adjacent. Candidates
        // need degree ≥ d themselves.
        let candidates: Vec<VertexId> = nbrs
            .iter()
            .copied()
            .filter(|&w| g.neighbors(w).iter().filter(|&&x| in_mask(x)).count() >= d)
            .collect();
        if candidates.len() < d {
            continue;
        }
        if let Some(mut clique) = grow_clique(g, &candidates, d) {
            clique.push(v);
            clique.sort_unstable();
            return Some(clique);
        }
    }
    None
}

/// Finds `size` mutually adjacent vertices among `candidates`
/// (backtracking; candidates all adjacent to the apex already).
fn grow_clique(g: &Graph, candidates: &[VertexId], size: usize) -> Option<Vec<VertexId>> {
    fn rec(
        g: &Graph,
        candidates: &[VertexId],
        start: usize,
        current: &mut Vec<VertexId>,
        size: usize,
    ) -> bool {
        if current.len() == size {
            return true;
        }
        if candidates.len() - start < size - current.len() {
            return false;
        }
        for i in start..candidates.len() {
            let w = candidates[i];
            if current.iter().all(|&u| g.has_edge(u, w)) {
                current.push(w);
                if rec(g, candidates, i + 1, current, size) {
                    return true;
                }
                current.pop();
            }
        }
        false
    }
    let mut cur = Vec::new();
    rec(g, candidates, 0, &mut cur, size).then_some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn gather_charges_radius() {
        let g = gen::grid(5, 5);
        let mut ledger = RoundLedger::new();
        let balls = gather_balls(&g, None, &[12], 2, &mut ledger);
        assert_eq!(ledger.phase_total("ball-gather"), 2);
        assert!(balls[0].contains(&12));
        assert!(balls[0].len() > 5);
    }

    #[test]
    fn clique_detection_finds_k4() {
        // K4 glued into a path.
        let mut edges: Vec<(usize, usize)> = (0..10).map(|i| (i, i + 1)).collect();
        edges.extend([(0, 2), (0, 3), (1, 3)]);
        let g = graphs::Graph::from_edges(11, edges);
        let mut ledger = RoundLedger::new();
        let clique = detect_clique(&g, None, 3, &mut ledger).expect("K4 present");
        assert_eq!(clique, vec![0, 1, 2, 3]);
        assert_eq!(ledger.phase_total("clique-detection"), 2);
    }

    #[test]
    fn clique_detection_none_in_sparse() {
        let g = gen::grid(6, 6);
        let mut ledger = RoundLedger::new();
        assert!(detect_clique(&g, None, 3, &mut ledger).is_none());
    }

    #[test]
    fn clique_detection_respects_mask() {
        let g = gen::complete(5);
        let mut mask = VertexSet::full(5);
        mask.remove(4); // K4 remains
        let mut ledger = RoundLedger::new();
        assert!(detect_clique(&g, Some(&mask), 4, &mut ledger).is_none());
        assert!(detect_clique(&g, Some(&mask), 3, &mut ledger).is_some());
    }
}
