//! The Goldberg–Plotkin–Shannon-style 7-coloring of planar graphs \[17\] —
//! the baseline the paper's Corollary 2.3(1) improves to 6 colors.
//!
//! Planar graphs have average degree < 6, so a constant fraction of
//! vertices always has degree ≤ 6: peel those layers (`O(log n)` of them),
//! then color layers from the last to the first — every vertex sees at most
//! 6 colored neighbors, so 7 colors suffice. Within a layer the induced
//! subgraph has degree ≤ 6 and is colored with the merge-reduce primitive.
//! Total rounds `O(log n + log* n)` with constant factors from the
//! degree-7 palette, matching \[17\]'s `O(log n)`.

use crate::ledger::RoundLedger;
use graphs::{Graph, VertexId, VertexSet};

/// Peels `g[mask]` into layers of degree ≤ `threshold` vertices.
///
/// Returns `layer[v]` (`usize::MAX` outside the mask) and the layer count.
/// One LOCAL round per layer.
///
/// # Panics
///
/// Panics if peeling stalls — i.e. some residual subgraph has minimum
/// degree > `threshold`, which cannot happen when `mad(g) ≤ threshold`.
pub fn degree_peeling(
    g: &Graph,
    mask: Option<&VertexSet>,
    threshold: usize,
    ledger: &mut RoundLedger,
) -> (Vec<usize>, usize) {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let mut layer = vec![usize::MAX; n];
    let mut deg: Vec<usize> = (0..n)
        .map(|v| {
            if in_mask(v) {
                g.neighbors(v).iter().filter(|&&w| in_mask(w)).count()
            } else {
                0
            }
        })
        .collect();
    let mut remaining: Vec<VertexId> = (0..n).filter(|&v| in_mask(v)).collect();
    let mut rounds = 0u64;
    let mut current = 0usize;
    while !remaining.is_empty() {
        rounds += 1;
        let peel: Vec<VertexId> = remaining
            .iter()
            .copied()
            .filter(|&v| deg[v] <= threshold)
            .collect();
        assert!(
            !peel.is_empty(),
            "degree peeling stalled: min degree exceeds {threshold}"
        );
        for &v in &peel {
            layer[v] = current;
        }
        for &v in &peel {
            for &w in g.neighbors(v) {
                if in_mask(w) && layer[w] == usize::MAX {
                    deg[w] -= 1;
                }
            }
        }
        remaining.retain(|&v| layer[v] == usize::MAX);
        current += 1;
    }
    ledger.charge("degree-peeling", rounds);
    (layer, current)
}

/// 7-colors a planar graph (more generally: any graph with `mad < 6`) in
/// `O(log n)` rounds, GPS style. Returns `color[v] ∈ 0..7`.
///
/// # Examples
///
/// ```
/// use local_model::{gps_seven_coloring, RoundLedger};
/// use graphs::gen;
/// let g = gen::triangular(10, 10);
/// let mut ledger = RoundLedger::new();
/// let col = gps_seven_coloring(&g, None, &mut ledger);
/// for (u, v) in g.edges() {
///     assert_ne!(col[u], col[v]);
/// }
/// assert!(col.iter().all(|&c| c < 7));
/// ```
pub fn gps_seven_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    bounded_peeling_coloring(g, mask, 6, ledger)
}

/// The generic GPS scheme: peel at degree `threshold`, color layers
/// top-down with `threshold + 1` colors.
pub fn bounded_peeling_coloring(
    g: &Graph,
    mask: Option<&VertexSet>,
    threshold: usize,
    ledger: &mut RoundLedger,
) -> Vec<usize> {
    let n = g.n();
    let in_mask = |v: VertexId| mask.is_none_or(|m| m.contains(v));
    let palette = threshold + 1;
    let (layer, layers) = degree_peeling(g, mask, threshold, ledger);

    // Per-layer internal coloring (disjoint layers run in parallel: charge
    // the maximum).
    let mut internal = vec![usize::MAX; n];
    let mut max_rounds = 0u64;
    for l in 0..layers {
        let members: Vec<VertexId> = (0..n).filter(|&v| in_mask(v) && layer[v] == l).collect();
        if members.is_empty() {
            continue;
        }
        let layer_mask = VertexSet::from_iter_with_universe(n, members.iter().copied());
        let mut sub = RoundLedger::new();
        let col = crate::reduce::coloring_by_forest_merge(
            g,
            Some(&layer_mask),
            &vec![0; n],
            palette,
            &mut sub,
        );
        for &v in &members {
            internal[v] = col[v];
        }
        max_rounds = max_rounds.max(sub.total());
    }
    ledger.charge("layer-internal-coloring", max_rounds);

    // Sweep layers top-down, internal classes one round each.
    let mut color = vec![usize::MAX; n];
    let mut sweep = 0u64;
    for l in (0..layers).rev() {
        for class in 0..palette {
            sweep += 1;
            for v in 0..n {
                if !in_mask(v) || layer[v] != l || internal[v] != class {
                    continue;
                }
                let used: Vec<usize> = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| in_mask(w))
                    .map(|&w| color[w])
                    .collect();
                color[v] = (0..palette)
                    .find(|c| !used.contains(c))
                    .expect("≤ threshold colored neighbors by peeling order");
            }
        }
    }
    ledger.charge("layer-sweep", sweep);
    color
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn seven_colors_on_planar_triangulations() {
        for seed in 0..4 {
            let g = gen::apollonian(200, seed);
            let mut ledger = RoundLedger::new();
            let col = gps_seven_coloring(&g, None, &mut ledger);
            for (u, v) in g.edges() {
                assert_ne!(col[u], col[v]);
            }
            assert!(col.iter().all(|&c| c < 7));
            assert!(ledger.phase_total("degree-peeling") >= 1);
        }
    }

    #[test]
    fn peeling_layers_logarithmic_on_planar() {
        let g = gen::apollonian(1000, 9);
        let mut ledger = RoundLedger::new();
        let (_, layers) = degree_peeling(&g, None, 6, &mut ledger);
        // Planar: ≥ a constant fraction peels per layer; 1000 vertices need
        // well under 40 layers.
        assert!(layers <= 40, "{layers} layers is not logarithmic");
    }

    #[test]
    fn generic_threshold_on_trees() {
        // Trees: threshold 1 gives 2 colors.
        let g = gen::random_tree(200, 3);
        let mut ledger = RoundLedger::new();
        let col = bounded_peeling_coloring(&g, None, 1, &mut ledger);
        for (u, v) in g.edges() {
            assert_ne!(col[u], col[v]);
        }
        assert!(col.iter().all(|&c| c < 2));
    }

    #[test]
    #[should_panic(expected = "stalled")]
    fn dense_graph_stalls() {
        let g = gen::complete(10);
        let mut ledger = RoundLedger::new();
        degree_peeling(&g, None, 6, &mut ledger);
    }

    #[test]
    fn masked_gps() {
        let g = gen::triangular(8, 8);
        let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 5 != 0));
        let mut ledger = RoundLedger::new();
        let col = gps_seven_coloring(&g, Some(&mask), &mut ledger);
        for (u, v) in g.edges() {
            if mask.contains(u) && mask.contains(v) {
                assert_ne!(col[u], col[v]);
            }
        }
    }
}
