//! Round accounting for the LOCAL model.
//!
//! In the LOCAL model the only resource is the number of synchronous
//! communication rounds. Every primitive in this crate charges its rounds to
//! a [`RoundLedger`], phase by phase, so experiments can report measured
//! round complexity next to the paper's bounds. Primitives that we execute
//! centrally for efficiency (radius-`r` ball gathers) charge exactly the
//! rounds a LOCAL implementation needs (`r`), keeping the ledger faithful.

use std::fmt;

/// A named accumulator of LOCAL rounds, grouped into phases.
///
/// # Examples
///
/// ```
/// use local_model::RoundLedger;
/// let mut ledger = RoundLedger::new();
/// ledger.charge("ball-gather", 12);
/// ledger.charge("cole-vishkin", 5);
/// ledger.charge("ball-gather", 12);
/// assert_eq!(ledger.total(), 29);
/// assert_eq!(ledger.phase_total("ball-gather"), 24);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RoundLedger {
    entries: Vec<(String, u64)>,
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RoundLedger::default()
    }

    /// Charges `rounds` LOCAL rounds to `phase`.
    pub fn charge(&mut self, phase: &str, rounds: u64) {
        self.entries.push((phase.to_owned(), rounds));
    }

    /// Total rounds across all phases.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|(_, r)| r).sum()
    }

    /// Total rounds charged to a specific phase name.
    pub fn phase_total(&self, phase: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(p, _)| p == phase)
            .map(|(_, r)| r)
            .sum()
    }

    /// All `(phase, rounds)` entries in charge order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Distinct phase names in first-seen order with their totals.
    pub fn summary(&self) -> Vec<(String, u64)> {
        let mut names: Vec<String> = Vec::new();
        for (p, _) in &self.entries {
            if !names.contains(p) {
                names.push(p.clone());
            }
        }
        names
            .into_iter()
            .map(|p| {
                let t = self.phase_total(&p);
                (p, t)
            })
            .collect()
    }

    /// Merges another ledger's entries into this one.
    pub fn absorb(&mut self, other: RoundLedger) {
        self.entries.extend(other.entries);
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "LOCAL rounds: {}", self.total())?;
        for (phase, rounds) in self.summary() {
            writeln!(f, "  {phase:<24} {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut l = RoundLedger::new();
        l.charge("a", 3);
        l.charge("b", 4);
        l.charge("a", 5);
        assert_eq!(l.total(), 12);
        assert_eq!(l.phase_total("a"), 8);
        assert_eq!(l.phase_total("b"), 4);
        assert_eq!(l.phase_total("missing"), 0);
    }

    #[test]
    fn summary_orders_by_first_seen() {
        let mut l = RoundLedger::new();
        l.charge("z", 1);
        l.charge("a", 2);
        l.charge("z", 3);
        assert_eq!(l.summary(), vec![("z".to_owned(), 4), ("a".to_owned(), 2)]);
    }

    #[test]
    fn absorb_merges() {
        let mut a = RoundLedger::new();
        a.charge("x", 1);
        let mut b = RoundLedger::new();
        b.charge("y", 2);
        a.absorb(b);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn display_is_nonempty() {
        let mut l = RoundLedger::new();
        l.charge("phase", 7);
        let s = format!("{l}");
        assert!(s.contains("phase"));
        assert!(s.contains('7'));
    }
}
