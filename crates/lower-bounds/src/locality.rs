//! Observation 2.4 machinery: LOCAL indistinguishability via ball
//! isomorphism.
//!
//! If every ball of radius `r + 1` in `H` is isomorphic to some ball in
//! `G`, then an `r`-round distributed algorithm cannot color `G` with
//! fewer than `χ(H)` colors: the adversary runs the algorithm on `H`,
//! where each vertex sees the same labelled neighborhood. The functions
//! here *measure* that correspondence on concrete graph pairs, which is
//! how the experiment tables certify Theorems 1.5, 2.5 and 2.6.

use graphs::{are_rooted_isomorphic, ball, Graph, InducedSubgraph, VertexId};

/// The largest radius `r ≤ max_radius` such that the balls of radius `r`
/// around `root_h` in `h` and `root_g` in `g` are rooted-isomorphic
/// (`None` if they already differ at radius 0 — impossible for nonempty
/// graphs — or 1).
pub fn indistinguishability_radius(
    h: &Graph,
    root_h: VertexId,
    g: &Graph,
    root_g: VertexId,
    max_radius: usize,
) -> Option<usize> {
    let mut best = None;
    for r in 1..=max_radius {
        if balls_match(h, root_h, g, root_g, r) {
            best = Some(r);
        } else {
            break;
        }
    }
    best
}

/// Whether the radius-`r` balls around the two roots are rooted-isomorphic.
pub fn balls_match(h: &Graph, root_h: VertexId, g: &Graph, root_g: VertexId, r: usize) -> bool {
    let bh = InducedSubgraph::new(h, ball(h, root_h, r, None));
    let bg = InducedSubgraph::new(g, ball(g, root_g, r, None));
    let (Some(rh), Some(rg)) = (bh.from_parent(root_h), bg.from_parent(root_g)) else {
        return false;
    };
    are_rooted_isomorphic(bh.graph(), rh, bg.graph(), rg)
}

/// A report row for one Observation 2.4 experiment: a "hard" graph `H`
/// (high chromatic number) whose balls match balls of an "easy" graph `G`.
#[derive(Clone, Debug)]
pub struct IndistinguishabilityReport {
    /// Number of vertices of the hard graph.
    pub hard_n: usize,
    /// Chromatic number of the hard graph (exact).
    pub hard_chi: usize,
    /// Chromatic number of the easy (planar) comparison graph (exact).
    pub easy_chi: usize,
    /// Fraction of hard-graph vertices whose radius-`radius` ball matches
    /// some easy-graph ball.
    pub matched_fraction: f64,
    /// The radius checked.
    pub radius: usize,
}

/// Checks, for every vertex of `hard`, whether its radius-`radius` ball
/// matches the ball around `easy_root` in `easy` (vertex-transitive easy
/// side) and reports the fraction. Exact χ is computed for both graphs —
/// keep them small.
pub fn indistinguishability_report(
    hard: &Graph,
    easy: &Graph,
    easy_roots: &[VertexId],
    radius: usize,
) -> IndistinguishabilityReport {
    let matched = hard
        .vertices()
        .filter(|&v| {
            easy_roots
                .iter()
                .any(|&w| balls_match(hard, v, easy, w, radius))
        })
        .count();
    IndistinguishabilityReport {
        hard_n: hard.n(),
        hard_chi: graphs::chromatic_number(hard),
        easy_chi: graphs::chromatic_number(easy),
        matched_fraction: matched as f64 / hard.n() as f64,
        radius,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen;

    #[test]
    fn path_interior_vs_cycle() {
        // Linial's classic: cycle balls look like path balls.
        let c = gen::cycle(20);
        let p = gen::path(41);
        let r = indistinguishability_radius(&c, 5, &p, 20, 8).unwrap();
        assert!(r >= 8, "cycle and path balls match to radius 8, got {r}");
    }

    #[test]
    fn radius_stops_at_structure() {
        // A cycle of length 9 vs a long path: balls match until the cycle
        // closes (radius 4 wraps: ball = whole C9 ≠ path segment).
        let c = gen::cycle(9);
        let p = gen::path(41);
        let r = indistinguishability_radius(&c, 0, &p, 20, 8).unwrap();
        assert_eq!(r, 3);
    }

    #[test]
    fn klein_grid_vs_planar_grid_interiors() {
        // Theorem 2.6's engine: interior balls of the odd Klein grid match
        // interior balls of the planar grid.
        let kg = gen::klein_grid(9, 9);
        let pg = gen::grid(9, 9);
        let center_k = 4 * 9 + 4;
        let center_p = 4 * 9 + 4;
        assert!(balls_match(&kg, center_k, &pg, center_p, 2));
    }

    #[test]
    fn report_on_small_klein() {
        let kg = gen::klein_grid(5, 5);
        // Easy side: torus grid (3-colorable? torus 5x5 chi=3…) — use the
        // big planar grid with several root types (interior, edge, corner).
        let pg = gen::grid(11, 11);
        let roots: Vec<usize> = vec![5 * 11 + 5];
        let rep = indistinguishability_report(&kg, &pg, &roots, 1);
        assert_eq!(rep.hard_chi, 4);
        assert_eq!(rep.easy_chi, 2);
        // All Klein-grid vertices are interior-like (4-regular).
        assert_eq!(rep.matched_fraction, 1.0);
    }
}
