//! # lower-bounds — the paper's impossibility constructions, executable
//!
//! The paper's §2 lower bounds all run through Observation 2.4: an
//! `r`-round LOCAL algorithm cannot tell apart vertices with isomorphic
//! radius-`(r+1)` balls. This crate builds every witness family and the
//! machinery to *measure* the indistinguishability:
//!
//! * [`locally_planar_5chromatic`] — 6-regular toroidal triangulations with
//!   χ = 5 whose balls match balls of the planar triangulated cylinder
//!   (Theorem 1.5 / Figure 3; see DESIGN.md for the Fisk substitution).
//! * [`h_graph`](fn@h_graph) — the planar triangle-free `H_{2l}` whose balls match the
//!   4-chromatic Klein-bottle grid `G_{5,2l+1}` (Theorem 2.5 / Figure 2).
//! * Klein-bottle grids themselves live in [`graphs::gen::klein_grid`]
//!   (4-chromatic for odd×odd — Theorem 2.6's engine against the
//!   2-chromatic planar grid).
//! * [`locality`] — ball-isomorphism radii and report tables.
//!
//! # Examples
//!
//! ```
//! use lower_bounds::{h_graph, locality::balls_match};
//! use graphs::gen::klein_grid;
//! // A 4-chromatic Klein grid is locally a planar triangle-free graph.
//! let hard = klein_grid(5, 7);
//! let easy = h_graph(3);
//! assert_eq!(graphs::chromatic_number(&hard), 4);
//! assert_eq!(graphs::chromatic_number(&easy), 3);
//! assert!(balls_match(&hard, 2 * 7 + 3, &easy, 2 * 6 + 3, 2));
//! ```

pub mod fisk;
pub mod h_graph;
pub mod locality;

pub use fisk::{
    cycle_power3, locally_planar_5chromatic, path_power3, shifted_torus_triangulation,
    triangulated_cylinder,
};
pub use h_graph::{h_graph, h_graph_index};
pub use locality::{
    balls_match, indistinguishability_radius, indistinguishability_report,
    IndistinguishabilityReport,
};
