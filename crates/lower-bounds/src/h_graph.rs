//! The planar triangle-free graph `H_{2l}` (Figure 2, right) and its role
//! in Theorem 2.5.
//!
//! The Klein-bottle grid `G_{5,2l+1}` is 4-chromatic (Gallai), but each of
//! its balls of radius `< l` is isomorphic to a ball of a *planar
//! triangle-free* graph — the height-5 quadrangulated cylinder `H_{2l}`
//! (the unrolled Klein grid: vertical 5-cycles survive, the horizontal
//! direction is cut open to length `2l`). By Observation 2.4, no
//! distributed algorithm can 3-color planar triangle-free graphs in `o(n)`
//! rounds.

use graphs::{Graph, GraphBuilder, VertexId};

/// The graph `H_{2l}`: a quadrangulated cylinder with vertical cycles of
/// length 5 and horizontal paths of length `2l` (so `n = 5·2l`). Planar
/// (annulus drawing), triangle-free, and 3-chromatic (it contains the odd
/// cycle C5 but is far from 4-chromatic).
///
/// # Panics
///
/// Panics if `l == 0`.
///
/// # Examples
///
/// ```
/// use lower_bounds::h_graph;
/// let h = h_graph(3);
/// assert_eq!(h.n(), 30);
/// assert!(graphs::is_triangle_free(&h, None));
/// assert_eq!(graphs::chromatic_number(&h), 3);
/// ```
pub fn h_graph(l: usize) -> Graph {
    assert!(l >= 1, "H_{{2l}} needs l ≥ 1");
    let width = 2 * l;
    let idx = |i: usize, j: usize| -> VertexId { (i % 5) * width + j };
    let mut b = GraphBuilder::new(5 * width);
    for i in 0..5 {
        for j in 0..width {
            b.add_edge(idx(i, j), idx(i + 1, j)); // vertical 5-cycle
            if j + 1 < width {
                b.add_edge(idx(i, j), idx(i, j + 1)); // horizontal path
            }
        }
    }
    b.build()
}

/// The vertex `(row, col)` of [`h_graph`]`(l)`.
pub fn h_graph_index(l: usize, row: usize, col: usize) -> VertexId {
    row * 2 * l + col
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::gen::klein_grid;

    #[test]
    fn h_graph_shape() {
        let h = h_graph(2);
        assert_eq!(h.n(), 20);
        // Interior degrees 4, boundary columns degree 3.
        assert_eq!(h.max_degree(), 4);
        assert_eq!(h.min_degree(), 3);
        assert!(graphs::is_triangle_free(&h, None));
        assert!(graphs::is_connected(&h, None));
    }

    #[test]
    fn h_graph_is_3_chromatic() {
        let h = h_graph(2);
        assert_eq!(graphs::chromatic_number(&h), 3);
    }

    #[test]
    fn klein_grid_is_4_chromatic_but_balls_match_h() {
        // G_{5, 2l+1} with l = 3: χ = 4 (Gallai), its radius-2 balls match
        // balls of the planar triangle-free H_{2l}.
        let l = 3usize;
        let g = klein_grid(5, 2 * l + 1);
        assert_eq!(graphs::chromatic_number(&g), 4);
        let h = h_graph(l);
        // Center of the Klein grid vs center column of H.
        let gk_root = 2 * (2 * l + 1) + l; // row 2, col l
        let h_root = h_graph_index(l, 2, l);
        let r = 2;
        let gb = graphs::InducedSubgraph::new(&g, graphs::ball(&g, gk_root, r, None));
        let hb = graphs::InducedSubgraph::new(&h, graphs::ball(&h, h_root, r, None));
        assert!(
            graphs::are_rooted_isomorphic(
                gb.graph(),
                gb.from_parent(gk_root).unwrap(),
                hb.graph(),
                hb.from_parent(h_root).unwrap(),
            ),
            "Observation 2.4 ball correspondence failed"
        );
    }

    #[test]
    fn mad_below_4_triangle_free_planar() {
        // Proposition 2.2: planar triangle-free ⇒ mad < 4.
        let h = h_graph(4);
        assert!(graphs::mad_at_most(&h, 4.0));
    }
}
