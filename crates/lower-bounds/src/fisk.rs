//! Locally planar, non-4-colorable toroidal triangulations (Theorem 1.5,
//! Figure 3).
//!
//! The paper invokes Fisk's triangulations (all degrees even except two
//! adjacent vertices) to rule out distributed 4-coloring of planar graphs
//! in `o(n)` rounds. We build the same phenomenon from a family we can
//! *verify exactly* (the substitution is documented in DESIGN.md):
//!
//! The shifted triangulated torus `T(3, c, c−1)` — three triangulated rows
//! whose vertical wrap shifts one column — is isomorphic to the **cube of
//! a cycle** `C_{3c}(1, 2, 3)` (walk the vertical spiral: down-steps become
//! `+1`, row steps `±3`, diagonals `±2`). For `3c ≢ 0 (mod 4)` this graph
//! is 5-chromatic, yet every interior ball of radius `r < (n − 7)/6` is
//! *identical* to a ball of the **planar** cube-of-a-path `P_n(1,2,3)`
//! (a triangulated strip, 4-chromatic). By Observation 2.4, an `r`-round
//! algorithm 4-coloring all planar graphs would properly 4-color the
//! 5-chromatic torus — contradiction. Chromatic numbers of small members
//! are certified by the exact solver in tests.

use graphs::{Graph, GraphBuilder, VertexId};

/// The shifted triangulated torus `T(rows, cols, shift)`.
///
/// Vertices `(i, j)`; edges to `(i, j+1)`, `(i+1, j)` and `(i+1, j+1)`,
/// where wrapping `i = rows → 0` adds `shift` to the column. A 6-regular
/// triangulation of the torus for non-degenerate parameters.
///
/// # Panics
///
/// Panics if the parameters collapse parallel edges (non-6-regular result).
pub fn shifted_torus_triangulation(rows: usize, cols: usize, shift: usize) -> Graph {
    let idx = move |i: usize, j: usize| -> VertexId {
        let (wrap, ii) = (i / rows, i % rows);
        let jj = (j + wrap * shift) % cols;
        ii * cols + jj
    };
    let mut b = GraphBuilder::new(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            b.add_edge(idx(i, j), idx(i, j + 1));
            b.add_edge(idx(i, j), idx(i + 1, j));
            b.add_edge(idx(i, j), idx(i + 1, j + 1));
        }
    }
    let g = b.build();
    assert!(
        g.is_regular(6),
        "T({rows},{cols},{shift}) collapsed to a non-6-regular graph"
    );
    g
}

/// The cube of a cycle, `C_n(1,2,3)`: vertices on a cycle, edges between
/// all pairs at circular distance ≤ 3. Isomorphic to the toroidal
/// triangulation `T(3, n/3, n/3 − 1)` when `3 | n`; 5-chromatic whenever
/// `n ≢ 0 (mod 4)` (and `n ≥ 8`).
///
/// # Panics
///
/// Panics if `n < 8` (smaller powers collapse into cliques).
pub fn cycle_power3(n: usize) -> Graph {
    assert!(n >= 8, "C_n(1,2,3) needs n ≥ 8 to be 6-regular");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for d in 1..=3usize {
            b.add_edge(v, (v + d) % n);
        }
    }
    b.build()
}

/// The cube of a path, `P_n(1,2,3)` — the **planar** twin of
/// [`cycle_power3`]: a triangulated strip with χ = 4, whose interior balls
/// are identical to the cycle-power's balls.
pub fn path_power3(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for d in 1..=3usize {
            if v + d < n {
                b.add_edge(v, v + d);
            }
        }
    }
    b.build()
}

/// The `k`-th member of the locally planar non-4-colorable family:
/// `T(3, 2k+1, 2k) ≅ C_{3(2k+1)}(1,2,3)` on `n = 6k + 3` vertices.
///
/// `n ≡ 3 (mod 4)` or `n ≡ 1 (mod 4)` — never `0 (mod 4)` — so every
/// member is 5-chromatic; members `k ∈ {2,3,4}` are verified exactly in
/// tests.
///
/// # Examples
///
/// ```
/// use lower_bounds::locally_planar_5chromatic;
/// let g = locally_planar_5chromatic(2);
/// assert_eq!(g.n(), 15);
/// assert!(g.is_regular(6));
/// ```
pub fn locally_planar_5chromatic(k: usize) -> Graph {
    assert!(k >= 2, "family starts at k = 2");
    shifted_torus_triangulation(3, 2 * k + 1, 2 * k)
}

/// A triangulated cylinder of height `rows` and length `len` (vertical
/// wrap, no horizontal wrap): the planar band whose interior is the
/// triangular lattice. 3-chromatic for `rows ≡ 0 (mod 3)`.
pub fn triangulated_cylinder(rows: usize, len: usize) -> Graph {
    let idx = |i: usize, j: usize| (i % rows) * len + j;
    let mut b = GraphBuilder::new(rows * len);
    for i in 0..rows {
        for j in 0..len {
            if j + 1 < len {
                b.add_edge(idx(i, j), idx(i, j + 1));
                b.add_edge(idx(i, j), idx(i + 1, j + 1));
            }
            b.add_edge(idx(i, j), idx(i + 1, j));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{chromatic_number, k_coloring};

    #[test]
    fn family_members_are_6_regular_eulerian() {
        for k in 2..6 {
            let g = locally_planar_5chromatic(k);
            assert!(g.is_regular(6));
            assert_eq!(g.n(), 3 * (2 * k + 1));
            assert_eq!(g.m(), 3 * g.n());
        }
    }

    #[test]
    fn torus_is_isomorphic_to_cycle_power() {
        for k in [2usize, 3] {
            let t = locally_planar_5chromatic(k);
            let c = cycle_power3(3 * (2 * k + 1));
            assert!(
                graphs::are_isomorphic(&t, &c),
                "T(3,{},{}) ≇ C_{}(1,2,3)",
                2 * k + 1,
                2 * k,
                3 * (2 * k + 1)
            );
        }
    }

    #[test]
    fn small_members_are_exactly_5_chromatic() {
        for k in [2usize, 3] {
            let g = locally_planar_5chromatic(k);
            assert!(
                k_coloring(&g, 4).is_none(),
                "k={k}: must not be 4-colorable"
            );
            assert!(k_coloring(&g, 5).is_some(), "k={k}: must be 5-colorable");
        }
    }

    #[test]
    fn k4_member_not_4_colorable() {
        // n = 27 — a slightly bigger certificate.
        let g = locally_planar_5chromatic(4);
        assert!(k_coloring(&g, 4).is_none());
    }

    #[test]
    fn cycle_power_chromatic_depends_on_n_mod_4() {
        assert_eq!(chromatic_number(&cycle_power3(12)), 4); // 4 | 12
        assert_eq!(chromatic_number(&cycle_power3(13)), 5);
        assert_eq!(chromatic_number(&cycle_power3(14)), 5);
        assert_eq!(chromatic_number(&cycle_power3(15)), 5);
        assert_eq!(chromatic_number(&cycle_power3(16)), 4);
    }

    #[test]
    fn path_power_is_4_chromatic_planar_witness() {
        let p = path_power3(20);
        assert_eq!(chromatic_number(&p), 4);
        // 3-degenerate (each vertex sees ≤ 3 earlier neighbors).
        assert!(graphs::degeneracy_order(&p, None).degeneracy <= 3);
        assert!(graphs::mad_at_most(&p, 6.0));
    }

    #[test]
    fn interior_balls_match_planar_twin() {
        // Observation 2.4: radius-3 balls of C_33(1,2,3) equal radius-3
        // balls around interior vertices of P_33(1,2,3).
        let hard = cycle_power3(33);
        let easy = path_power3(33);
        for r in 1..=3usize {
            assert!(
                crate::locality::balls_match(&hard, 16, &easy, 16, r),
                "radius {r} balls differ"
            );
        }
    }

    #[test]
    fn cylinder_is_3_chromatic() {
        // The triangular lattice is 3-chromatic; the height-3 cylinder
        // keeps that (color (i + j) mod 3).
        let c = triangulated_cylinder(3, 8);
        assert_eq!(chromatic_number(&c), 3);
        assert!(graphs::mad_at_most(&c, 6.0));
    }

    #[test]
    #[should_panic(expected = "non-6-regular")]
    fn degenerate_parameters_rejected() {
        shifted_torus_triangulation(2, 5, 0);
    }

    #[test]
    #[should_panic]
    fn tiny_cycle_power_rejected() {
        cycle_power3(7);
    }
}
