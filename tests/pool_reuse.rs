//! Pool sharing must actually share: with one [`EnginePool`] threaded
//! through a pipeline, the process-wide thread-spawn counter
//! ([`engine::worker_threads_spawned`]) stays flat no matter how many
//! sessions — or peeling levels — run on it, and every observable stays
//! bit-identical to private-pool sessions.
//!
//! The counter is process-global, so this file holds a single `#[test]`:
//! its deltas would race against any concurrently running session-spawning
//! test in the same binary.

use distributed_coloring::{list_color_sparse, ListAssignment, SparseColoringConfig};
use engine::{EngineConfig, EnginePool, EngineSession, NodeCtx, NodeProgram, Outbox, Stop};
use graphs::gen;

/// Max-id gossip (`usize` messages) — one of the two session types the
/// shared core must serve back to back.
struct Gossip {
    best: usize,
}

impl NodeProgram for Gossip {
    type Message = usize;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        self.best = ctx.id;
        Outbox::Broadcast(ctx.id)
    }

    fn on_round(&mut self, _: &mut NodeCtx<'_>, inbox: &[(usize, usize)]) -> Outbox<usize> {
        self.best = inbox.iter().map(|&(_, m)| m).fold(self.best, usize::max);
        Outbox::Broadcast(self.best)
    }

    fn halted(&self) -> bool {
        false
    }
}

/// Running-sum echo (`u64` messages) — a *different* message type than
/// [`Gossip`]'s, so reuse exercises the type-erased core, not a lucky
/// monomorphization.
struct WideEcho {
    sum: u64,
}

impl NodeProgram for WideEcho {
    type Message = u64;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<u64> {
        Outbox::Broadcast(ctx.id as u64)
    }

    fn on_round(&mut self, _: &mut NodeCtx<'_>, inbox: &[(usize, u64)]) -> Outbox<u64> {
        self.sum += inbox.iter().map(|&(_, m)| m).sum::<u64>();
        Outbox::Broadcast(self.sum)
    }

    fn halted(&self) -> bool {
        false
    }
}

fn gossip_run(g: &graphs::Graph, config: EngineConfig) -> (Vec<usize>, u64) {
    let mut sess = EngineSession::new(g, config, |_| Gossip { best: 0 });
    sess.run_phase("gossip", Stop::Rounds(6));
    let bests = sess.programs().iter().map(|p| p.best).collect();
    let (_, metrics, _) = sess.into_parts();
    (bests, metrics.total_messages() as u64)
}

fn echo_run(g: &graphs::Graph, config: EngineConfig) -> (Vec<u64>, u64) {
    let mut sess = EngineSession::new(g, config, |_| WideEcho { sum: 0 });
    sess.run_phase("echo", Stop::Rounds(5));
    let sums = sess.programs().iter().map(|p| p.sum).collect();
    let (_, metrics, _) = sess.into_parts();
    (sums, metrics.total_messages() as u64)
}

#[test]
fn shared_pool_keeps_thread_spawns_flat_and_results_identical() {
    let g = gen::grid(12, 12);

    // Reference observables from private-pool sessions (these spawn
    // threads; measured deltas start after them).
    let private = EngineConfig::default().with_shards(8).with_workers(3);
    let gossip_ref = gossip_run(&g, private.clone());
    let echo_ref = echo_run(&g, private);

    // One pool, many sessions of alternating program types: the spawn
    // delta is exactly the pool's threads, paid once up front.
    let base = engine::worker_threads_spawned();
    let pool = EnginePool::new(3);
    assert_eq!(engine::worker_threads_spawned() - base, 2);
    assert_eq!(pool.workers(), 3);
    let shared = EngineConfig::default().with_shards(8).with_pool(&pool);
    for _ in 0..4 {
        assert_eq!(gossip_run(&g, shared.clone()), gossip_ref);
        assert_eq!(echo_run(&g, shared.clone()), echo_ref);
    }
    assert_eq!(
        engine::worker_threads_spawned() - base,
        2,
        "sessions sharing a pool must not spawn threads of their own"
    );

    // The full Theorem 1.3 pipeline: every peeling level runs several
    // internal engine sessions, all on one pipeline-owned pool — the spawn
    // delta per run is the pool size, independent of the level count.
    let cpus = std::thread::available_parallelism().map_or(1, |p| p.get());
    let per_run = cpus.min(4) - 1;
    let mut level_counts = Vec::new();
    for n in [60usize, 400] {
        let g = gen::apollonian(n, 9);
        let lists = ListAssignment::uniform(g.n(), 6);
        let config = SparseColoringConfig {
            engine_shards: Some(4),
            ..SparseColoringConfig::default()
        };
        let base = engine::worker_threads_spawned();
        let outcome = list_color_sparse(&g, &lists, 6, config).expect("runs");
        let coloring = outcome.coloring().expect("planar ⇒ no K7");
        assert!(graphs::is_proper(&g, &coloring.colors));
        level_counts.push(coloring.stats.alive_sizes.len());
        assert_eq!(
            engine::worker_threads_spawned() - base,
            per_run,
            "a peeling run must spawn exactly one pool (n = {n})"
        );
    }
    assert!(
        level_counts[1] >= level_counts[0],
        "the larger workload should not peel fewer levels: {level_counts:?}"
    );
}
