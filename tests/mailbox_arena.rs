//! Steady-state rounds must not allocate per message.
//!
//! The SoA mailbox layout exists for exactly one reason: a routing epoch at
//! n = 10⁶ cannot afford a heap allocation per delivered message. Inboxes
//! are `(start, len)` spans into one contiguous per-group segment rebuilt
//! by counting sort; staging arenas and segments keep their capacity across
//! rounds; the `MAX_WIDTH` fast path skips the split-mode width scan for
//! one-word messages. The observable consequence: once capacities have
//! warmed up, the number of heap *allocations* per round is independent of
//! how many messages move.
//!
//! This test installs a counting `#[global_allocator]` and compares the
//! allocation count of identical steady-state phases at two sizes two
//! orders of magnitude apart. Per-message allocations would show up ~10⁵
//! times over; the assertion leaves slack only for per-round constants
//! (metrics rows, phase bookkeeping).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use engine::{
    EngineConfig, EngineMessage, EngineSession, NodeCtx, NodeProgram, Outbox, Stop, WireCodec,
};
use graphs::gen;

/// Counts allocations (not bytes — growth doublings are amortized, a
/// per-message `Vec` is not) while the gate is up.
struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Every node broadcasts its id every round: 2 messages per vertex per
/// round on a cycle, all on the one-word (`usize`, `MAX_WIDTH = Some(1)`)
/// fast path.
struct Chatter;

impl NodeProgram for Chatter {
    type Message = usize;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        Outbox::Broadcast(ctx.id)
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(usize, usize)]) -> Outbox<usize> {
        assert_eq!(inbox.len(), 2, "cycle neighbors both spoke");
        Outbox::Broadcast(ctx.id)
    }

    fn halted(&self) -> bool {
        false
    }
}

/// A six-word fixed-size payload: wider than the Split(4) budget, so every
/// delivery runs the real fragmentation path — encode into the routing
/// worker's arena, chop into `(seq, total)` frames, reassemble per edge —
/// while the decode lands on the stack, never the heap.
#[derive(Clone, Copy, PartialEq, Debug)]
struct WidePing([u64; 6]);

impl WireCodec for WidePing {
    fn encode(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.0);
    }

    fn decode(words: &[u64]) -> Option<Self> {
        words.try_into().ok().map(WidePing)
    }
}

impl EngineMessage for WidePing {
    const MAX_WIDTH: Option<usize> = Some(6);
}

/// Broadcasts a six-word stamp every round: with a Split(4) budget every
/// delivery fragments into two frames, exercising the per-group encode
/// arena and the per-edge reassembly buffers each round.
struct WideChatter;

impl NodeProgram for WideChatter {
    type Message = WidePing;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<WidePing> {
        Outbox::Broadcast(WidePing([ctx.id as u64; 6]))
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(usize, WidePing)]) -> Outbox<WidePing> {
        assert_eq!(inbox.len(), 2, "cycle neighbors both spoke");
        for (src, m) in inbox {
            assert_eq!(m.0, [*src as u64; 6], "reassembly must round-trip");
        }
        Outbox::Broadcast(WidePing([ctx.id as u64; 6]))
    }

    fn halted(&self) -> bool {
        false
    }
}

/// Runs `rounds` warm-up rounds (capacity growth happens here, uncounted),
/// then `rounds` steady-state rounds under the allocation counter; returns
/// the steady-state count.
fn steady_state_allocs<P: NodeProgram + 'static>(
    n: usize,
    rounds: u64,
    mk: impl Fn() -> P + Copy,
) -> usize {
    let g = gen::cycle(n);
    // Split(4) keeps the CONGEST accounting on in both rows. For `Chatter`
    // (usize, `MAX_WIDTH = Some(1)`) the static bound fits the budget, so
    // the width scan is skipped entirely; for `WideChatter` (six words)
    // every delivery takes the full fragmentation path.
    let config = EngineConfig::default().with_shards(1).congest_split(4);
    let mut session = EngineSession::new(&g, config, |_| mk());
    session.run_phase("warmup", Stop::Rounds(rounds));
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    session.run_phase("steady", Stop::Rounds(rounds));
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn steady_state_rounds_allocate_independently_of_message_count() {
    let rounds = 12;
    let small_n = 64;
    let large_n = 8192;
    let small = steady_state_allocs(small_n, rounds, || Chatter);
    let large = steady_state_allocs(large_n, rounds, || Chatter);
    // The large run moves (large_n - small_n) * 2 * rounds ≈ 195k more
    // messages than the small one. Per-message (or even per-vertex)
    // allocation anywhere on the deliver path would blow this bound by
    // orders of magnitude; the slack covers per-round bookkeeping noise.
    let slack = 64;
    assert!(
        large <= small + slack,
        "steady-state rounds must not allocate per message: \
         {small} allocs at n={small_n} vs {large} at n={large_n} \
         (allowed slack {slack})"
    );
}

#[test]
fn split_fragmentation_rounds_allocate_independently_of_message_count() {
    let rounds = 12;
    let small_n = 64;
    let large_n = 8192;
    let small = steady_state_allocs(small_n, rounds, || WideChatter);
    let large = steady_state_allocs(large_n, rounds, || WideChatter);
    // Every one of the large run's ~195k extra deliveries encodes, chops,
    // and reassembles a six-word message under the Split(4) budget. The
    // per-group encode arena and the per-edge reassembly buffers warmed up
    // before counting started, so the steady-state allocation count must
    // stay flat in n.
    let slack = 64;
    assert!(
        large <= small + slack,
        "split-path rounds must not allocate per fragmented message: \
         {small} allocs at n={small_n} vs {large} at n={large_n} \
         (allowed slack {slack})"
    );
}
