//! Engine-vs-sequential equivalence: for every ported algorithm, the
//! message-passing execution must reproduce the sequential implementation's
//! coloring/partition *and* its `RoundLedger` totals — the engine is a new
//! substrate, not a new algorithm.

use engine::{
    engine_cole_vishkin_3color, engine_h_partition, engine_randomized_list_coloring, EngineConfig,
};
use graphs::gen;
use local_model::{
    cole_vishkin_3color, h_partition, randomized_list_coloring, RootedForest, RoundLedger,
};

fn forest_from_bfs(g: &graphs::Graph, root: usize) -> RootedForest {
    RootedForest::new(graphs::bfs_parents(g, root, None))
}

#[test]
fn cole_vishkin_equivalence_across_forest_families() {
    let forests = [
        forest_from_bfs(&gen::path(2000), 0),
        forest_from_bfs(&gen::binary_tree(10), 0),
        forest_from_bfs(&gen::random_tree(700, 13), 0),
        RootedForest::new(vec![0]),
    ];
    for (i, f) in forests.iter().enumerate() {
        let mut seq_ledger = RoundLedger::new();
        let seq = cole_vishkin_3color(f, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (colors, metrics) =
            engine_cole_vishkin_3color(f, EngineConfig::default().with_shards(3), &mut eng_ledger);
        assert_eq!(colors, seq, "forest {i}: colorings diverged");
        assert_eq!(
            eng_ledger.phase_total("cole-vishkin"),
            seq_ledger.phase_total("cole-vishkin"),
            "forest {i}: shrink-phase rounds diverged"
        );
        assert_eq!(
            eng_ledger.phase_total("shift-down"),
            seq_ledger.phase_total("shift-down")
        );
        assert_eq!(eng_ledger.total(), seq_ledger.total());
        // The ledger is *observed*: every charged round was executed.
        assert_eq!(metrics.total_rounds(), eng_ledger.total());
    }
}

#[test]
fn h_partition_equivalence_matches_barenboim_elkin_phase() {
    // The same (a, ε) grid the Barenboim–Elkin baseline sweeps.
    for (n, a, eps, seed) in [
        (200usize, 2usize, 1.0f64, 1u64),
        (200, 3, 0.5, 2),
        (500, 2, 0.25, 3),
        (64, 4, 1.0, 4),
    ] {
        let g = gen::forest_union(n, a, seed);
        let mut seq_ledger = RoundLedger::new();
        let seq = h_partition(&g, None, a, eps, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (hp, metrics) = engine_h_partition(
            &g,
            a,
            eps,
            EngineConfig::default().with_shards(4),
            &mut eng_ledger,
        );
        assert_eq!(hp.layer, seq.layer, "n={n} a={a} ε={eps}");
        assert_eq!(hp.layers, seq.layers);
        assert_eq!(hp.threshold, seq.threshold);
        assert_eq!(
            eng_ledger.phase_total("h-partition"),
            seq_ledger.phase_total("h-partition")
        );
        assert_eq!(metrics.total_rounds(), hp.layers as u64);
    }
}

#[test]
fn randomized_equivalence_is_bit_identical() {
    for (g, seed) in [
        (gen::random_regular(300, 4, 5), 5u64),
        (gen::grid(15, 15), 7),
        (gen::random_tree(250, 9), 9),
    ] {
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (0..g.degree(v) + 1).collect())
            .collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = randomized_list_coloring(&g, None, &lists, seed, 1000, &mut seq_ledger);
        assert!(seq.complete);
        let mut eng_ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            &lists,
            seed,
            1000,
            EngineConfig::default().with_shards(2),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors, "seed {seed}: colors diverged");
        assert_eq!(out.rounds, seq.rounds, "seed {seed}: cycle counts diverged");
        assert!(out.complete);
        assert_eq!(
            eng_ledger.phase_total("randomized-coloring"),
            seq_ledger.phase_total("randomized-coloring")
        );
        // Two engine rounds per propose/resolve cycle, all observed.
        assert_eq!(metrics.total_rounds(), 2 * out.rounds);
        assert!(graphs::is_proper(&g, &out.colors));
    }
}

#[test]
fn facade_prelude_reaches_the_engine() {
    use fewer_colors::prelude::*;
    let g = graphs::gen::forest_union(60, 2, 1);
    let mut ledger = RoundLedger::new();
    let (hp, metrics) = engine_h_partition(&g, 2, 1.0, EngineConfig::default(), &mut ledger);
    assert!(hp.layers >= 1);
    assert_eq!(metrics.total_rounds(), ledger.total());
}
