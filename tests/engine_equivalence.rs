//! Engine-vs-sequential equivalence: for every ported algorithm, the
//! message-passing execution must reproduce the sequential implementation's
//! coloring/partition *and* its `RoundLedger` totals — the engine is a new
//! substrate, not a new algorithm.

use engine::{
    engine_cole_vishkin_3color, engine_degree_plus_one_coloring, engine_gather_balls,
    engine_h_partition, engine_randomized_list_coloring, engine_ruling_forest, EngineConfig,
};
use graphs::{gen, VertexSet};
use local_model::{
    cole_vishkin_3color, degree_plus_one_coloring, gather_balls, h_partition,
    randomized_list_coloring, ruling_forest, RootedForest, RoundLedger,
};
use proptest::prelude::*;

fn forest_from_bfs(g: &graphs::Graph, root: usize) -> RootedForest {
    RootedForest::new(graphs::bfs_parents(g, root, None))
}

#[test]
fn cole_vishkin_equivalence_across_forest_families() {
    let forests = [
        forest_from_bfs(&gen::path(2000), 0),
        forest_from_bfs(&gen::binary_tree(10), 0),
        forest_from_bfs(&gen::random_tree(700, 13), 0),
        RootedForest::new(vec![0]),
    ];
    for (i, f) in forests.iter().enumerate() {
        let mut seq_ledger = RoundLedger::new();
        let seq = cole_vishkin_3color(f, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (colors, metrics) =
            engine_cole_vishkin_3color(f, EngineConfig::default().with_shards(3), &mut eng_ledger);
        assert_eq!(colors, seq, "forest {i}: colorings diverged");
        assert_eq!(
            eng_ledger.phase_total("cole-vishkin"),
            seq_ledger.phase_total("cole-vishkin"),
            "forest {i}: shrink-phase rounds diverged"
        );
        assert_eq!(
            eng_ledger.phase_total("shift-down"),
            seq_ledger.phase_total("shift-down")
        );
        assert_eq!(eng_ledger.total(), seq_ledger.total());
        // The ledger is *observed*: every charged round was executed.
        assert_eq!(metrics.total_rounds(), eng_ledger.total());
    }
}

#[test]
fn h_partition_equivalence_matches_barenboim_elkin_phase() {
    // The same (a, ε) grid the Barenboim–Elkin baseline sweeps.
    for (n, a, eps, seed) in [
        (200usize, 2usize, 1.0f64, 1u64),
        (200, 3, 0.5, 2),
        (500, 2, 0.25, 3),
        (64, 4, 1.0, 4),
    ] {
        let g = gen::forest_union(n, a, seed);
        let mut seq_ledger = RoundLedger::new();
        let seq = h_partition(&g, None, a, eps, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (hp, metrics) = engine_h_partition(
            &g,
            None,
            a,
            eps,
            EngineConfig::default().with_shards(4),
            &mut eng_ledger,
        );
        assert_eq!(hp.layer, seq.layer, "n={n} a={a} ε={eps}");
        assert_eq!(hp.layers, seq.layers);
        assert_eq!(hp.threshold, seq.threshold);
        assert_eq!(
            eng_ledger.phase_total("h-partition"),
            seq_ledger.phase_total("h-partition")
        );
        assert_eq!(metrics.total_rounds(), hp.layers as u64);
    }
}

#[test]
fn randomized_equivalence_is_bit_identical() {
    for (g, seed) in [
        (gen::random_regular(300, 4, 5), 5u64),
        (gen::grid(15, 15), 7),
        (gen::random_tree(250, 9), 9),
    ] {
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (0..g.degree(v) + 1).collect())
            .collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = randomized_list_coloring(&g, None, &lists, seed, 1000, &mut seq_ledger);
        assert!(seq.complete);
        let mut eng_ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            seed,
            1000,
            EngineConfig::default().with_shards(2),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors, "seed {seed}: colors diverged");
        assert_eq!(out.rounds, seq.rounds, "seed {seed}: cycle counts diverged");
        assert!(out.complete);
        assert_eq!(
            eng_ledger.phase_total("randomized-coloring"),
            seq_ledger.phase_total("randomized-coloring")
        );
        // Two engine rounds per propose/resolve cycle, all observed.
        assert_eq!(metrics.total_rounds(), 2 * out.rounds);
        assert!(graphs::is_proper(&g, &out.colors));
    }
}

#[test]
fn masked_equivalence_randomized_and_h_partition() {
    // The active-set contract: a masked engine session replays the
    // sequential masked primitive — colors/layers AND ledger totals — at
    // several shard counts, with dead vertices untouched.
    let g = gen::grid(14, 14);
    let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 4 != 1));
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut seq_ledger = RoundLedger::new();
    let seq = randomized_list_coloring(&g, Some(&mask), &lists, 5, 1000, &mut seq_ledger);
    assert!(seq.complete);
    for shards in [1usize, 3, 8] {
        let mut eng_ledger = RoundLedger::new();
        let (out, _) = engine_randomized_list_coloring(
            &g,
            Some(&mask),
            &lists,
            5,
            1000,
            EngineConfig::default().with_shards(shards),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors, "shards {shards}");
        assert_eq!(eng_ledger.total(), seq_ledger.total(), "shards {shards}");
    }

    let g = gen::forest_union(400, 2, 3);
    let mask = VertexSet::from_iter_with_universe(400, (0..400).filter(|v| v % 7 != 0));
    let mut seq_ledger = RoundLedger::new();
    let seq = h_partition(&g, Some(&mask), 2, 1.0, &mut seq_ledger);
    let mut eng_ledger = RoundLedger::new();
    let (hp, _) = engine_h_partition(
        &g,
        Some(&mask),
        2,
        1.0,
        EngineConfig::default().with_shards(4),
        &mut eng_ledger,
    );
    assert_eq!(hp.layer, seq.layer);
    assert_eq!(hp.layers, seq.layers);
    assert_eq!(eng_ledger.total(), seq_ledger.total());
}

#[test]
fn degree_plus_one_equivalence_masked_and_whole() {
    // The merge-reduce (d+1)-coloring — the per-level coloring phase of
    // Theorem 1.3 — executed on the engine: identical colors and ledger
    // totals, whole-graph and masked.
    let cases: Vec<(graphs::Graph, Option<VertexSet>)> = vec![
        (gen::grid(9, 9), None),
        (gen::random_regular(60, 4, 11), None),
        (gen::triangular(6, 6), {
            let n = gen::triangular(6, 6).n();
            Some(VertexSet::from_iter_with_universe(
                n,
                (0..n).filter(|v| v % 3 != 2),
            ))
        }),
    ];
    for (g, mask) in &cases {
        let mut seq_ledger = RoundLedger::new();
        let seq = degree_plus_one_coloring(g, mask.as_ref(), &mut seq_ledger);
        for shards in [1usize, 4] {
            let mut eng_ledger = RoundLedger::new();
            let (col, metrics) = engine_degree_plus_one_coloring(
                g,
                mask.as_ref(),
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(col, seq, "n={} shards={shards}", g.n());
            assert_eq!(eng_ledger.total(), seq_ledger.total());
            assert_eq!(
                eng_ledger.phase_total("class-sweep"),
                seq_ledger.phase_total("class-sweep")
            );
            // Every class-sweep round was actually executed on the engine.
            assert_eq!(
                metrics.total_rounds(),
                eng_ledger.phase_total("class-sweep")
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GatherProgram: on random sparse graphs, the engine's flooded ball
    /// contents equal the sequential [`gather_balls`] for every center, at
    /// shards {1, 2, 8}, with equal `"ball-gather"` charges.
    #[test]
    fn gather_program_balls_match_sequential(
        n in 20usize..120,
        extra in 0usize..40,
        radius in 0usize..5,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed); // sparse: m ≤ n + 40
        let centers: Vec<usize> = (0..n).collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = gather_balls(&g, None, &centers, radius, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (balls, _) = engine_gather_balls(
                &g, None, &centers, radius,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&balls, &seq, "shards = {}", shards);
            prop_assert_eq!(ledger.total(), seq_ledger.total());
        }
    }

    /// RulingProgram: on random sparse graphs, the engine-built forest —
    /// roots, membership, parents, depths — equals the sequential
    /// [`ruling_forest`], at shards {1, 2, 8}, with equal charges.
    #[test]
    fn ruling_program_forest_matches_sequential(
        n in 20usize..120,
        extra in 0usize..40,
        alpha in 1usize..7,
        stride in 1usize..4,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed);
        let subset: Vec<usize> = (0..n).step_by(stride).collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = ruling_forest(&g, None, &subset, alpha, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (rf, _) = engine_ruling_forest(
                &g, None, &subset, alpha,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&rf.roots, &seq.roots, "shards = {}", shards);
            prop_assert_eq!(&rf.parent, &seq.parent, "shards = {}", shards);
            prop_assert_eq!(&rf.root_of, &seq.root_of, "shards = {}", shards);
            prop_assert_eq!(&rf.depth, &seq.depth, "shards = {}", shards);
            prop_assert_eq!(ledger.total(), seq_ledger.total());
        }
    }
}

#[test]
fn facade_prelude_reaches_the_engine() {
    use fewer_colors::prelude::*;
    let g = graphs::gen::forest_union(60, 2, 1);
    let mut ledger = RoundLedger::new();
    let (hp, metrics) = engine_h_partition(&g, None, 2, 1.0, EngineConfig::default(), &mut ledger);
    assert!(hp.layers >= 1);
    assert_eq!(metrics.total_rounds(), ledger.total());
}
