//! Engine-vs-sequential equivalence: for every ported algorithm, the
//! message-passing execution must reproduce the sequential implementation's
//! coloring/partition *and* its `RoundLedger` totals — the engine is a new
//! substrate, not a new algorithm. The wire-codec layer rides the same
//! contract: encodings are width-honest round trips, and `Split(1)` runs —
//! where *every* multi-word message crosses as fragments — reproduce
//! unlimited-width outputs exactly.

use engine::programs::gather::{GatherMsg, NbrList};
use engine::programs::h_partition::Peeled;
use engine::programs::randomized::ColorMsg;
use engine::programs::ruling::RulingMsg;
use engine::{
    engine_cole_vishkin_3color, engine_degree_plus_one_coloring, engine_gather_balls,
    engine_h_partition, engine_randomized_list_coloring, engine_ruling_forest, EngineConfig,
    EngineMessage, FaultPlan, VertexOrder, SPLIT_PHASE,
};
use graphs::{gen, VertexSet};
use local_model::{
    cole_vishkin_3color, degree_plus_one_coloring, gather_balls, h_partition,
    randomized_list_coloring, ruling_forest, RootedForest, RoundLedger,
};
use proptest::prelude::*;
use rand::mix64;

fn forest_from_bfs(g: &graphs::Graph, root: usize) -> RootedForest {
    RootedForest::new(graphs::bfs_parents(g, root, None))
}

#[test]
fn cole_vishkin_equivalence_across_forest_families() {
    let forests = [
        forest_from_bfs(&gen::path(2000), 0),
        forest_from_bfs(&gen::binary_tree(10), 0),
        forest_from_bfs(&gen::random_tree(700, 13), 0),
        RootedForest::new(vec![0]),
    ];
    for (i, f) in forests.iter().enumerate() {
        let mut seq_ledger = RoundLedger::new();
        let seq = cole_vishkin_3color(f, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (colors, metrics) =
            engine_cole_vishkin_3color(f, EngineConfig::default().with_shards(3), &mut eng_ledger);
        assert_eq!(colors, seq, "forest {i}: colorings diverged");
        assert_eq!(
            eng_ledger.phase_total("cole-vishkin"),
            seq_ledger.phase_total("cole-vishkin"),
            "forest {i}: shrink-phase rounds diverged"
        );
        assert_eq!(
            eng_ledger.phase_total("shift-down"),
            seq_ledger.phase_total("shift-down")
        );
        assert_eq!(eng_ledger.total(), seq_ledger.total());
        // The ledger is *observed*: every charged round was executed.
        assert_eq!(metrics.total_rounds(), eng_ledger.total());
    }
}

#[test]
fn h_partition_equivalence_matches_barenboim_elkin_phase() {
    // The same (a, ε) grid the Barenboim–Elkin baseline sweeps.
    for (n, a, eps, seed) in [
        (200usize, 2usize, 1.0f64, 1u64),
        (200, 3, 0.5, 2),
        (500, 2, 0.25, 3),
        (64, 4, 1.0, 4),
    ] {
        let g = gen::forest_union(n, a, seed);
        let mut seq_ledger = RoundLedger::new();
        let seq = h_partition(&g, None, a, eps, &mut seq_ledger);
        let mut eng_ledger = RoundLedger::new();
        let (hp, metrics) = engine_h_partition(
            &g,
            None,
            a,
            eps,
            EngineConfig::default().with_shards(4),
            &mut eng_ledger,
        );
        assert_eq!(hp.layer, seq.layer, "n={n} a={a} ε={eps}");
        assert_eq!(hp.layers, seq.layers);
        assert_eq!(hp.threshold, seq.threshold);
        assert_eq!(
            eng_ledger.phase_total("h-partition"),
            seq_ledger.phase_total("h-partition")
        );
        assert_eq!(metrics.total_rounds(), hp.layers as u64);
    }
}

#[test]
fn randomized_equivalence_is_bit_identical() {
    for (g, seed) in [
        (gen::random_regular(300, 4, 5), 5u64),
        (gen::grid(15, 15), 7),
        (gen::random_tree(250, 9), 9),
    ] {
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (0..g.degree(v) + 1).collect())
            .collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = randomized_list_coloring(&g, None, &lists, seed, 1000, &mut seq_ledger);
        assert!(seq.complete);
        let mut eng_ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            seed,
            1000,
            EngineConfig::default().with_shards(2),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors, "seed {seed}: colors diverged");
        assert_eq!(out.rounds, seq.rounds, "seed {seed}: cycle counts diverged");
        assert!(out.complete);
        assert_eq!(
            eng_ledger.phase_total("randomized-coloring"),
            seq_ledger.phase_total("randomized-coloring")
        );
        // Two engine rounds per propose/resolve cycle, all observed.
        assert_eq!(metrics.total_rounds(), 2 * out.rounds);
        assert!(graphs::is_proper(&g, &out.colors));
    }
}

#[test]
fn masked_equivalence_randomized_and_h_partition() {
    // The active-set contract: a masked engine session replays the
    // sequential masked primitive — colors/layers AND ledger totals — at
    // several shard counts, with dead vertices untouched.
    let g = gen::grid(14, 14);
    let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 4 != 1));
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut seq_ledger = RoundLedger::new();
    let seq = randomized_list_coloring(&g, Some(&mask), &lists, 5, 1000, &mut seq_ledger);
    assert!(seq.complete);
    for shards in [1usize, 3, 8] {
        let mut eng_ledger = RoundLedger::new();
        let (out, _) = engine_randomized_list_coloring(
            &g,
            Some(&mask),
            &lists,
            5,
            1000,
            EngineConfig::default().with_shards(shards),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors, "shards {shards}");
        assert_eq!(eng_ledger.total(), seq_ledger.total(), "shards {shards}");
    }

    let g = gen::forest_union(400, 2, 3);
    let mask = VertexSet::from_iter_with_universe(400, (0..400).filter(|v| v % 7 != 0));
    let mut seq_ledger = RoundLedger::new();
    let seq = h_partition(&g, Some(&mask), 2, 1.0, &mut seq_ledger);
    let mut eng_ledger = RoundLedger::new();
    let (hp, _) = engine_h_partition(
        &g,
        Some(&mask),
        2,
        1.0,
        EngineConfig::default().with_shards(4),
        &mut eng_ledger,
    );
    assert_eq!(hp.layer, seq.layer);
    assert_eq!(hp.layers, seq.layers);
    assert_eq!(eng_ledger.total(), seq_ledger.total());
}

#[test]
fn degree_plus_one_equivalence_masked_and_whole() {
    // The merge-reduce (d+1)-coloring — the per-level coloring phase of
    // Theorem 1.3 — executed on the engine: identical colors and ledger
    // totals, whole-graph and masked.
    let cases: Vec<(graphs::Graph, Option<VertexSet>)> = vec![
        (gen::grid(9, 9), None),
        (gen::random_regular(60, 4, 11), None),
        (gen::triangular(6, 6), {
            let n = gen::triangular(6, 6).n();
            Some(VertexSet::from_iter_with_universe(
                n,
                (0..n).filter(|v| v % 3 != 2),
            ))
        }),
    ];
    for (g, mask) in &cases {
        let mut seq_ledger = RoundLedger::new();
        let seq = degree_plus_one_coloring(g, mask.as_ref(), &mut seq_ledger);
        for shards in [1usize, 4] {
            let mut eng_ledger = RoundLedger::new();
            let (col, metrics) = engine_degree_plus_one_coloring(
                g,
                mask.as_ref(),
                EngineConfig::default().with_shards(shards),
                &mut eng_ledger,
            );
            assert_eq!(col, seq, "n={} shards={shards}", g.n());
            assert_eq!(eng_ledger.total(), seq_ledger.total());
            assert_eq!(
                eng_ledger.phase_total("class-sweep"),
                seq_ledger.phase_total("class-sweep")
            );
            // Every class-sweep round was actually executed on the engine.
            assert_eq!(
                metrics.total_rounds(),
                eng_ledger.phase_total("class-sweep")
            );
        }
    }
}

/// Asserts the two halves of the wire-codec contract for one message: the
/// encoding round-trips, and its word count is exactly the recorded width.
fn assert_codec<M: EngineMessage + PartialEq + std::fmt::Debug>(m: &M) {
    let words = m.encode_to_vec();
    assert_eq!(
        words.len().max(1),
        m.width(),
        "{m:?}: width must equal the encoded frame count"
    );
    assert_eq!(&M::decode(&words).expect("decodes"), m, "round trip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every program message type round-trips through its wire codec with
    /// a width-honest encoding, across randomized payloads.
    #[test]
    fn wire_codecs_round_trip_width_honestly(
        seed in 0u64..5000,
        len in 0usize..48,
    ) {
        let word = |i: usize| mix64(seed, i as u64);
        let ids: Vec<usize> = (0..len).map(|i| (word(i) % 1_000_000) as usize).collect();
        assert_codec(&GatherMsg::Rich);
        assert_codec(&GatherMsg::Ball(ids.clone()));
        assert_codec(&NbrList(ids.clone()));
        assert_codec(&RulingMsg::Tokens {
            bit: (word(len) % 60) as usize,
            prefixes: ids.clone(),
        });
        assert_codec(&RulingMsg::Claim { root: (word(1) % 1_000_000) as usize });
        assert_codec(&RulingMsg::Keep);
        assert_codec(&Peeled);
        assert_codec(&ColorMsg::Proposal((word(2) % 1_000_000) as usize));
        assert_codec(&ColorMsg::Committed((word(3) % 1_000_000) as usize));
        assert_codec(&((word(4) % 1_000_000) as usize));
        assert_codec(&(word(5) % 1_000_000));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `Split(1)` — every multi-word message crosses the wire as one-word
    /// fragments and is reassembled — must reproduce the unlimited-width
    /// gather and ruling runs exactly on random sparse graphs, with the
    /// split surplus isolated under the SPLIT_PHASE ledger entry and the
    /// observed fragment/physical-round accounting consistent.
    #[test]
    fn split_one_matches_unlimited_on_gather_and_ruling(
        n in 20usize..100,
        extra in 0usize..40,
        radius in 1usize..4,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed);
        let centers: Vec<usize> = (0..n).collect();
        let mut base_ledger = RoundLedger::new();
        let (base_balls, base_metrics) = engine_gather_balls(
            &g, None, &centers, radius, EngineConfig::default(), &mut base_ledger,
        );
        let mut ledger = RoundLedger::new();
        let (balls, metrics) = engine_gather_balls(
            &g, None, &centers, radius,
            EngineConfig::default().with_shards(2).congest_split(1),
            &mut ledger,
        );
        prop_assert_eq!(&balls, &base_balls, "gather balls diverged under Split(1)");
        let surplus = ledger.phase_total(SPLIT_PHASE);
        prop_assert_eq!(ledger.total() - surplus, base_ledger.total());
        prop_assert_eq!(
            metrics.total_physical_rounds(),
            metrics.total_rounds() + surplus
        );
        if base_metrics.max_width() > 1 {
            prop_assert!(metrics.total_fragments() > 0, "wide floods must fragment");
        }

        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let alpha = 1 + (seed % 5) as usize;
        let mut base_ledger = RoundLedger::new();
        let (base_rf, _) = engine_ruling_forest(
            &g, None, &subset, alpha, EngineConfig::default(), &mut base_ledger,
        );
        let mut ledger = RoundLedger::new();
        let (rf, _) = engine_ruling_forest(
            &g, None, &subset, alpha,
            EngineConfig::default().with_shards(2).congest_split(1),
            &mut ledger,
        );
        prop_assert_eq!(&rf.roots, &base_rf.roots);
        prop_assert_eq!(&rf.parent, &base_rf.parent);
        prop_assert_eq!(&rf.root_of, &base_rf.root_of);
        prop_assert_eq!(&rf.depth, &base_rf.depth);
        prop_assert_eq!(
            ledger.total() - ledger.phase_total(SPLIT_PHASE),
            base_ledger.total()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// GatherProgram: on random sparse graphs, the engine's flooded ball
    /// contents equal the sequential [`gather_balls`] for every center, at
    /// shards {1, 2, 8}, with equal `"ball-gather"` charges.
    #[test]
    fn gather_program_balls_match_sequential(
        n in 20usize..120,
        extra in 0usize..40,
        radius in 0usize..5,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed); // sparse: m ≤ n + 40
        let centers: Vec<usize> = (0..n).collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = gather_balls(&g, None, &centers, radius, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (balls, _) = engine_gather_balls(
                &g, None, &centers, radius,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&balls, &seq, "shards = {}", shards);
            prop_assert_eq!(ledger.total(), seq_ledger.total());
        }
    }

    /// RulingProgram: on random sparse graphs, the engine-built forest —
    /// roots, membership, parents, depths — equals the sequential
    /// [`ruling_forest`], at shards {1, 2, 8}, with equal charges.
    #[test]
    fn ruling_program_forest_matches_sequential(
        n in 20usize..120,
        extra in 0usize..40,
        alpha in 1usize..7,
        stride in 1usize..4,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed);
        let subset: Vec<usize> = (0..n).step_by(stride).collect();
        let mut seq_ledger = RoundLedger::new();
        let seq = ruling_forest(&g, None, &subset, alpha, &mut seq_ledger);
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (rf, _) = engine_ruling_forest(
                &g, None, &subset, alpha,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&rf.roots, &seq.roots, "shards = {}", shards);
            prop_assert_eq!(&rf.parent, &seq.parent, "shards = {}", shards);
            prop_assert_eq!(&rf.root_of, &seq.root_of, "shards = {}", shards);
            prop_assert_eq!(&rf.depth, &seq.depth, "shards = {}", shards);
            prop_assert_eq!(ledger.total(), seq_ledger.total());
        }
    }

    /// Frontier-sparse rounds are a pure optimization: with gating on
    /// (default) the engine skips empty-inbox nodes whose activation hint
    /// permits it, and the result — outputs, ledger charges, per-round
    /// message fingerprint — must equal a full scan
    /// (`with_frontier(false)`) on random sparse graphs. The full scan
    /// reports `active_frac == 1.0` every round; the gated run's fraction
    /// never exceeds it.
    #[test]
    fn frontier_gating_matches_full_scan_on_gather_and_ruling(
        n in 20usize..120,
        extra in 0usize..40,
        radius in 0usize..5,
        alpha in 1usize..7,
        seed in 0u64..500,
    ) {
        let g = gen::gnm(n, n + extra, seed);
        let centers: Vec<usize> = (0..n).collect();
        let mut full_ledger = RoundLedger::new();
        let (full_balls, full_metrics) = engine_gather_balls(
            &g, None, &centers, radius,
            EngineConfig::default().with_frontier(false),
            &mut full_ledger,
        );
        prop_assert!(
            full_metrics.per_round().iter().all(|r| r.active_frac == 1.0),
            "a full scan steps every node"
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (balls, metrics) = engine_gather_balls(
                &g, None, &centers, radius,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&balls, &full_balls, "gather, shards = {}", shards);
            prop_assert_eq!(ledger.total(), full_ledger.total());
            prop_assert_eq!(metrics.message_counts(), full_metrics.message_counts());
            prop_assert!(metrics.mean_active_frac() <= 1.0 + 1e-12);
        }

        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let mut full_ledger = RoundLedger::new();
        let (full_rf, full_metrics) = engine_ruling_forest(
            &g, None, &subset, alpha,
            EngineConfig::default().with_frontier(false),
            &mut full_ledger,
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (rf, metrics) = engine_ruling_forest(
                &g, None, &subset, alpha,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&rf.roots, &full_rf.roots, "ruling, shards = {}", shards);
            prop_assert_eq!(&rf.parent, &full_rf.parent, "ruling, shards = {}", shards);
            prop_assert_eq!(&rf.root_of, &full_rf.root_of, "ruling, shards = {}", shards);
            prop_assert_eq!(&rf.depth, &full_rf.depth, "ruling, shards = {}", shards);
            prop_assert_eq!(ledger.total(), full_ledger.total());
            prop_assert_eq!(metrics.message_counts(), full_metrics.message_counts());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The frontier-vs-full-scan contract for the remaining program
    /// families — Cole–Vishkin, H-partition, randomized list coloring, and
    /// the (d+1) class sweep (the `WakeAt`-scheduled layered program):
    /// outputs, ledger totals, and per-round message fingerprints are
    /// bit-identical to `with_frontier(false)` at shards {1, 2, 8}.
    #[test]
    fn frontier_gating_matches_full_scan_on_remaining_programs(
        n in 30usize..150,
        a in 2usize..4,
        extra in 0usize..30,
        seed in 0u64..500,
    ) {
        // Cole–Vishkin on a random-tree forest.
        let f = forest_from_bfs(&gen::random_tree(n, seed), 0);
        let mut full_ledger = RoundLedger::new();
        let (full_colors, full_metrics) = engine_cole_vishkin_3color(
            &f, EngineConfig::default().with_frontier(false), &mut full_ledger,
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (colors, metrics) = engine_cole_vishkin_3color(
                &f, EngineConfig::default().with_shards(shards), &mut ledger,
            );
            prop_assert_eq!(&colors, &full_colors, "cv, shards = {}", shards);
            prop_assert_eq!(ledger.total(), full_ledger.total());
            prop_assert_eq!(metrics.message_counts(), full_metrics.message_counts());
        }

        // H-partition on an arboricity-`a` forest union.
        let g = gen::forest_union(n, a, seed);
        let mut full_ledger = RoundLedger::new();
        let (full_hp, full_metrics) = engine_h_partition(
            &g, None, a, 1.0,
            EngineConfig::default().with_frontier(false),
            &mut full_ledger,
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (hp, metrics) = engine_h_partition(
                &g, None, a, 1.0,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&hp.layer, &full_hp.layer, "hp, shards = {}", shards);
            prop_assert_eq!(hp.layers, full_hp.layers);
            prop_assert_eq!(ledger.total(), full_ledger.total());
            prop_assert_eq!(metrics.message_counts(), full_metrics.message_counts());
        }

        // Randomized list coloring on a sparse G(n, m) — RNG streams are
        // keyed on (seed, id), so gating must not perturb a single draw.
        let g = gen::gnm(n, n + extra, seed);
        let lists: Vec<Vec<usize>> = g
            .vertices()
            .map(|v| (0..g.degree(v) + 1).collect())
            .collect();
        let mut full_ledger = RoundLedger::new();
        let (full_out, full_metrics) = engine_randomized_list_coloring(
            &g, None, &lists, seed, 1000,
            EngineConfig::default().with_frontier(false),
            &mut full_ledger,
        );
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (out, metrics) = engine_randomized_list_coloring(
                &g, None, &lists, seed, 1000,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            prop_assert_eq!(&out.colors, &full_out.colors, "rand, shards = {}", shards);
            prop_assert_eq!(out.rounds, full_out.rounds);
            prop_assert_eq!(ledger.total(), full_ledger.total());
            prop_assert_eq!(metrics.message_counts(), full_metrics.message_counts());
        }

        // The (d+1) class sweep, whose slot schedule rides `WakeAt`.
        let mut full_ledger = RoundLedger::new();
        let full_colors = {
            let (c, _) = engine_degree_plus_one_coloring(
                &g, None,
                EngineConfig::default().with_frontier(false),
                &mut full_ledger,
            );
            c
        };
        for shards in [1usize, 2, 8] {
            let mut ledger = RoundLedger::new();
            let (colors, _) = engine_degree_plus_one_coloring(
                &g, None, EngineConfig::default().with_shards(shards), &mut ledger,
            );
            prop_assert_eq!(&colors, &full_colors, "sweep, shards = {}", shards);
            prop_assert_eq!(ledger.total(), full_ledger.total());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The locality relabeling is unobservable: over every registered graph
    /// family, a `VertexOrder::Locality` run — with drop/delay faults and
    /// seeded per-edge duplication and loss active — is bit-identical to
    /// the identity-order run at shards {1, 2, 8}: colors, per-round
    /// message fingerprints, ledger totals, and physical rounds all match.
    /// Randomized list coloring is the probe because its per-node RNG
    /// streams (`(seed, id)`) expose any id remapping instantly.
    #[test]
    fn locality_relabeling_is_bit_identical_to_identity(
        n in 40usize..160,
        seed in 0u64..500,
    ) {
        for name in gen::family_names() {
            let g = gen::build_family(name, n, seed).expect("registered family");
            let lists: Vec<Vec<usize>> = g
                .vertices()
                .map(|v| (0..g.degree(v) + 1).collect())
                .collect();
            let faults = || {
                FaultPlan::new()
                    .delay_outbox(0, 1, 2)
                    .drop_outbox(g.n() / 2, 2)
                    .duplicate_edges(seed ^ 0xD00D, 0.25)
                    .lose_edges(seed ^ 0x10CA1, 0.2)
            };
            let run = |order: VertexOrder, shards: usize| {
                let mut ledger = RoundLedger::new();
                let (out, metrics) = engine_randomized_list_coloring(
                    &g, None, &lists, seed, 1000,
                    EngineConfig::default()
                        .with_shards(shards)
                        .with_order(order)
                        .with_faults(faults()),
                    &mut ledger,
                );
                (
                    out.colors,
                    out.rounds,
                    metrics.message_counts(),
                    metrics.total_physical_rounds(),
                    ledger.total(),
                )
            };
            let identity = run(VertexOrder::Identity, 2);
            for shards in [1usize, 2, 8] {
                let locality = run(VertexOrder::Locality, shards);
                prop_assert_eq!(
                    &identity, &locality,
                    "family {} shards {}: locality diverged", name, shards
                );
            }
        }
    }

    /// Locality + CONGEST `Split(1)`: per-edge fragment reassembly is keyed
    /// on original sender ids, so a relabeled gather flood must reproduce
    /// the identity run's balls, split surplus, and fragment counts.
    #[test]
    fn locality_split_gather_matches_identity(
        n in 24usize..90,
        extra in 0usize..30,
        seed in 0u64..300,
    ) {
        let g = gen::gnm(n, n + extra, seed);
        let centers: Vec<usize> = (0..n).collect();
        let run = |order: VertexOrder| {
            let mut ledger = RoundLedger::new();
            let (balls, metrics) = engine_gather_balls(
                &g, None, &centers, 3,
                EngineConfig::default()
                    .with_shards(4)
                    .with_order(order)
                    .congest_split(1),
                &mut ledger,
            );
            (
                balls,
                metrics.total_fragments(),
                metrics.total_physical_rounds(),
                ledger.phase_total(SPLIT_PHASE),
                ledger.total(),
            )
        };
        prop_assert_eq!(run(VertexOrder::Identity), run(VertexOrder::Locality));
    }
}

#[test]
fn facade_prelude_reaches_the_engine() {
    use fewer_colors::prelude::*;
    let g = graphs::gen::forest_union(60, 2, 1);
    let mut ledger = RoundLedger::new();
    let (hp, metrics) = engine_h_partition(&g, None, 2, 1.0, EngineConfig::default(), &mut ledger);
    assert!(hp.layers >= 1);
    assert_eq!(metrics.total_rounds(), ledger.total());
}
