//! Failure-injection tests: every documented error path is reachable and
//! correct, and the algorithm degrades diagnosably — never silently — when
//! the paper's preconditions are violated.

use distributed_coloring::{
    brooks_list_coloring, color_by_arboricity, color_planar_girth6, color_planar_triangle_free,
    degree_choosable_coloring, list_color_sparse, nice_list_coloring, BrooksError, ColoringError,
    CorollaryError, ErtError, ListAssignment, Outcome, RadiusPolicy, SparseColoringConfig,
};
use engine::{
    engine_gather_balls, engine_h_partition, engine_randomized_list_coloring, engine_ruling_forest,
    EngineConfig, FaultPlan,
};
use graphs::gen;
use local_model::RoundLedger;

#[test]
fn mad_exceeds_d_without_clique_is_detected() {
    // The octahedron: mad = 4, K4-free. Asking d = 3 violates d ≥ mad but
    // offers no K4 — the algorithm must report NoHappyVertices (adaptive
    // radius exhausts all components first).
    let g = gen::octahedron();
    let lists = ListAssignment::uniform(6, 3);
    let err = list_color_sparse(&g, &lists, 3, SparseColoringConfig::default()).unwrap_err();
    assert!(
        matches!(err, ColoringError::NoHappyVertices { alive: 6 }),
        "got {err:?}"
    );
}

#[test]
fn verify_mad_reports_exact_fraction() {
    let g = gen::octahedron();
    let lists = ListAssignment::uniform(6, 3);
    let config = SparseColoringConfig {
        verify_mad: true,
        ..Default::default()
    };
    match list_color_sparse(&g, &lists, 3, config) {
        Err(ColoringError::MadExceedsBound { mad }) => {
            assert_eq!(mad.0 as f64 / mad.1 as f64, 4.0);
        }
        other => panic!("expected MadExceedsBound, got {other:?}"),
    }
}

#[test]
fn fixed_radius_with_no_happy_vertices_errors_not_loops() {
    // Fixed radius cannot grow; the K4-free mad-violating input must error
    // immediately rather than spin.
    let g = gen::octahedron();
    let lists = ListAssignment::uniform(6, 3);
    let config = SparseColoringConfig {
        radius: RadiusPolicy::Fixed(2),
        ..Default::default()
    };
    assert!(matches!(
        list_color_sparse(&g, &lists, 3, config),
        Err(ColoringError::NoHappyVertices { .. })
    ));
}

#[test]
fn clique_beats_error_when_both_present() {
    // K5 + octahedron: d = 4 → K5 is found (clique wins over the mad
    // violation of the octahedron component… octahedron has mad 4 = d, so
    // it is actually colorable; only K5 blocks).
    let g = gen::complete(5).disjoint_union(&gen::octahedron());
    let lists = ListAssignment::uniform(g.n(), 4);
    match list_color_sparse(&g, &lists, 4, SparseColoringConfig::default()).unwrap() {
        Outcome::CliqueFound { vertices, .. } => {
            assert_eq!(vertices, vec![0, 1, 2, 3, 4]);
        }
        Outcome::Colored(_) => panic!("K5 cannot be 4-colored"),
    }
}

#[test]
fn ert_rejects_undersized_and_reports_gallai() {
    // Tight lists on a Gallai tree: obstruction with a witness in range.
    let t = gen::random_gallai_tree(&gen::GallaiTreeConfig::default(), 3);
    let lists: Vec<Vec<usize>> = t.vertices().map(|v| (0..t.degree(v)).collect()).collect();
    match degree_choosable_coloring(&t, &lists) {
        Err(ErtError::GallaiObstruction { witness }) => assert!(witness < t.n()),
        Ok(col) => {
            // Some Gallai trees with tight lists are still colorable via
            // the 2-connected differing-lists path (uniform 0..deg lists
            // differ when degrees differ) — that is fine too, but the
            // coloring must be valid.
            assert!(graphs::is_proper_list_coloring(&t, &col, &lists));
        }
        Err(e) => panic!("unexpected {e}"),
    }
}

#[test]
fn corollary_wrappers_reject_wrong_classes() {
    // Triangle in a "triangle-free" call.
    let tri = gen::triangular(4, 4);
    let l4 = ListAssignment::uniform(tri.n(), 4);
    assert!(matches!(
        color_planar_triangle_free(&tri, &l4),
        Err(CorollaryError::StructuralCheckFailed { .. })
    ));
    // Girth-4 grid in a "girth ≥ 6" call.
    let grid = gen::grid(4, 4);
    let l3 = ListAssignment::uniform(16, 3);
    assert!(matches!(
        color_planar_girth6(&grid, &l3),
        Err(CorollaryError::StructuralCheckFailed { .. })
    ));
    // Arboricity lie: K7 claimed as a = 2.
    let k7 = gen::complete(7);
    let l = ListAssignment::uniform(7, 4);
    assert!(matches!(
        color_by_arboricity(&k7, &l, 2),
        Err(CorollaryError::ClassViolated { .. })
    ));
}

#[test]
fn brooks_error_paths() {
    // Δ < 3.
    let p = gen::path(5);
    assert!(matches!(
        brooks_list_coloring(&p, &ListAssignment::uniform(5, 2)),
        Err(BrooksError::MaxDegreeTooSmall { max_degree: 2 })
    ));
    // Undersized lists.
    let g = gen::random_regular(10, 4, 1);
    assert!(matches!(
        brooks_list_coloring(&g, &ListAssignment::uniform(10, 3)),
        Err(BrooksError::NotNice { .. })
    ));
    // Non-nice assignment in the nice-list entry point.
    let c = gen::cycle(5);
    assert!(matches!(
        nice_list_coloring(&c, &ListAssignment::uniform(5, 2)),
        Err(BrooksError::NotNice { .. })
    ));
}

#[test]
fn partial_validity_is_never_silent() {
    // Any Ok(Colored) outcome must be a complete proper list coloring —
    // probe 20 random seeds with occasionally-infeasible dense inputs.
    for seed in 0..20u64 {
        let g = gen::gnm(40, 70, seed);
        let d = 4;
        let lists = ListAssignment::uniform(40, d);
        match list_color_sparse(&g, &lists, d, SparseColoringConfig::default()) {
            Ok(Outcome::Colored(res)) => {
                assert!(graphs::is_proper(&g, &res.colors), "seed {seed}");
                assert!(
                    res.colors.iter().all(|&c| c < d),
                    "seed {seed}: off-palette color"
                );
            }
            Ok(Outcome::CliqueFound { vertices, .. }) => {
                assert_eq!(vertices.len(), d + 1, "seed {seed}");
                assert!(graphs::is_clique(&g, &vertices), "seed {seed}");
            }
            Err(ColoringError::NoHappyVertices { .. }) => {
                // Legitimate: mad(G) > d for this seed. Verify.
                assert!(!graphs::mad_at_most(&g, d as f64), "seed {seed}");
            }
            Err(e) => panic!("seed {seed}: unexpected {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Engine fault injection: the runtime's drop/delay hooks perturb executions
// deterministically and the damage is observable — never silent.
// ---------------------------------------------------------------------------

#[test]
fn engine_dropped_commit_announcements_are_observable() {
    // Drop node 0's outbox in every resolve round: whenever it commits, its
    // neighbors never hear the announcement and may later grab the same
    // color. The perturbation is deterministic; what must hold is that the
    // fault is (a) counted and (b) localized to the victim's neighborhood.
    let g = gen::cycle(24);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) = engine_randomized_list_coloring(
        &g,
        None,
        &lists,
        42,
        500,
        EngineConfig::default(),
        &mut clean_ledger,
    );
    assert!(clean.complete);
    assert!(graphs::is_proper(&g, &clean.colors));

    let mut faults = FaultPlan::new();
    for resolve_round in (2..200u64).step_by(2) {
        faults = faults.drop_outbox(0, resolve_round);
    }
    let mut ledger = RoundLedger::new();
    let (faulted, metrics) = engine_randomized_list_coloring(
        &g,
        None,
        &lists,
        42,
        500,
        EngineConfig::default().with_faults(faults),
        &mut ledger,
    );
    assert!(
        metrics.total_dropped() > 0,
        "the fault plan must actually have intercepted traffic"
    );
    // Deterministic, localized degradation: only the victim's neighbors had
    // stale knowledge, so any monochromatic edge must touch that
    // neighborhood; the rest of the ring must be properly colored.
    for (u, v) in g.edges() {
        if faulted.colors[u] == faulted.colors[v] && faulted.colors[u] != usize::MAX {
            let near_victim = |x: usize| x == 0 || g.has_edge(0, x);
            assert!(
                near_victim(u) || near_victim(v),
                "improper edge ({u},{v}) outside the faulted neighborhood"
            );
        }
    }
}

#[test]
fn engine_delay_fault_shifts_h_partition_layers_detectably() {
    // Apollonian graphs peel in several layers. Delaying every announcement
    // of an early-peeling vertex makes its neighbors see stale residual
    // degrees, so some layer assignment must move by at least one round —
    // and the engine must still converge once the delayed batch lands.
    let g = gen::apollonian(120, 3);
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) =
        engine_h_partition(&g, None, 3, 1.0, EngineConfig::default(), &mut clean_ledger);
    assert!(
        clean.layers >= 2,
        "need a multi-layer instance for this test"
    );

    // Pick a vertex that peels in the first layer and delay it.
    let victim = (0..g.n()).find(|&v| clean.layer[v] == 0).unwrap();
    let faults = FaultPlan::new().delay_outbox(victim, 1, 2);
    let mut ledger = RoundLedger::new();
    let (faulted, metrics) = engine_h_partition(
        &g,
        None,
        3,
        1.0,
        EngineConfig::default().with_faults(faults),
        &mut ledger,
    );
    assert!(metrics.total_delayed() > 0, "delay fault must have fired");
    // Every vertex is still assigned a layer (the peel messages eventually
    // arrive), and the victim keeps its layer (its own residual degree was
    // never touched by the fault).
    assert!(faulted.layer.iter().all(|&l| l != usize::MAX));
    assert_eq!(faulted.layer[victim], 0);
}

#[test]
fn engine_round_cap_degrades_diagnosably_not_silently() {
    // An impossible cycle budget: the run must report incompleteness and
    // leave only proper partial colorings — mirroring the sequential
    // contract under max_rounds exhaustion.
    let g = gen::random_regular(200, 4, 8);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut ledger = RoundLedger::new();
    let (out, metrics) = engine_randomized_list_coloring(
        &g,
        None,
        &lists,
        3,
        1,
        EngineConfig::default(),
        &mut ledger,
    );
    assert!(!out.complete);
    assert_eq!(out.rounds, 1);
    assert_eq!(metrics.total_rounds(), 2);
    for (u, v) in g.edges() {
        if out.colors[u] != usize::MAX && out.colors[v] != usize::MAX {
            assert_ne!(out.colors[u], out.colors[v]);
        }
    }
}

#[test]
fn engine_duplication_faults_are_replayable_and_idempotent_where_expected() {
    // Seeded per-edge duplication: the same plan perturbs the run
    // identically at any worker count (replayability), and the randomized
    // coloring — whose protocol tolerates at-least-once delivery — ends in
    // exactly the clean run's coloring (duplicate Proposal/Committed
    // messages carry no new information).
    let g = gen::grid(12, 12);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) = engine_randomized_list_coloring(
        &g,
        None,
        &lists,
        17,
        500,
        EngineConfig::default(),
        &mut clean_ledger,
    );
    assert!(clean.complete);

    let run = |workers: usize| {
        let mut ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            17,
            500,
            EngineConfig::default()
                .with_shards(8)
                .with_workers(workers)
                .with_faults(FaultPlan::new().duplicate_edges(99, 0.3)),
            &mut ledger,
        );
        (
            out.colors,
            out.rounds,
            metrics.message_counts(),
            metrics.total_duplicated(),
            ledger.total(),
        )
    };
    let base = run(1);
    assert!(base.3 > 0, "p = 0.3 must duplicate some traffic");
    assert_eq!(
        base.0, clean.colors,
        "the randomized protocol is duplication-idempotent"
    );
    assert_eq!(base.1, clean.rounds);
    for workers in [2usize, 4, 8] {
        assert_eq!(run(workers), base, "workers = {workers}");
    }
}

#[test]
fn engine_duplication_perturbs_duplication_sensitive_protocols_detectably() {
    // The H-partition program decrements residual degree per Peeled
    // message, so a duplicated peel announcement over-decrements — the
    // damage must be deterministic and observable, never silent: the run
    // still terminates, the duplicate count is reported, and a rerun
    // reproduces the exact same (possibly wrong) layers.
    let g = gen::apollonian(100, 5);
    let run = || {
        let mut ledger = RoundLedger::new();
        let (hp, metrics) = engine_h_partition(
            &g,
            None,
            3,
            1.0,
            EngineConfig::default()
                .with_shards(4)
                .with_faults(FaultPlan::new().duplicate_edges(5, 0.5)),
            &mut ledger,
        );
        (hp.layer, hp.layers, metrics.total_duplicated())
    };
    let a = run();
    let b = run();
    assert!(a.2 > 0, "duplication must have fired");
    assert_eq!(a, b, "perturbed runs replay exactly");
    assert!(a.0.iter().all(|&l| l != usize::MAX), "still terminates");
}

#[test]
fn engine_per_edge_loss_shrinks_gathered_balls_deterministically() {
    // Seeded per-edge loss against the ball-gather program: lost flood
    // messages can only *shrink* what a vertex learns (knowledge is
    // monotone), the damage is counted, and the perturbed run replays
    // bit-identically at any worker count.
    let g = gen::grid(10, 10);
    let centers: Vec<usize> = (0..g.n()).collect();
    let radius = 3;
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) = engine_gather_balls(
        &g,
        None,
        &centers,
        radius,
        EngineConfig::default(),
        &mut clean_ledger,
    );
    let run = |workers: usize| {
        let mut ledger = RoundLedger::new();
        let (balls, metrics) = engine_gather_balls(
            &g,
            None,
            &centers,
            radius,
            EngineConfig::default()
                .with_shards(8)
                .with_workers(workers)
                .with_faults(FaultPlan::new().lose_edges(23, 0.2)),
            &mut ledger,
        );
        (balls, metrics.total_lost(), ledger.total())
    };
    let base = run(1);
    assert!(base.1 > 0, "p = 0.2 must lose some flood traffic");
    assert_eq!(base.2, clean_ledger.total(), "loss costs no extra rounds");
    let mut strictly_smaller = 0;
    for (lossy, full) in base.0.iter().zip(&clean) {
        assert!(
            lossy.iter().all(|v| full.contains(v)),
            "lost messages cannot invent ball members"
        );
        assert!(lossy.len() <= full.len());
        if lossy.len() < full.len() {
            strictly_smaller += 1;
        }
    }
    assert!(strictly_smaller > 0, "some ball must actually have shrunk");
    for workers in [2usize, 4, 8] {
        assert_eq!(run(workers), base, "workers = {workers}");
    }
}

#[test]
fn engine_per_edge_loss_perturbs_ruling_forests_detectably_and_replayably() {
    // Loss against the ruling program: lost prefix tokens let extra rulers
    // survive and lost claims leave vertices unclaimed — the degradation
    // must be deterministic (same forest on every rerun and worker count)
    // and structurally observable, never a silent success.
    let g = gen::grid(9, 9);
    let subset: Vec<usize> = (0..g.n()).step_by(2).collect();
    let alpha = 4;
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) = engine_ruling_forest(
        &g,
        None,
        &subset,
        alpha,
        EngineConfig::default(),
        &mut clean_ledger,
    );
    let run = |workers: usize| {
        let mut ledger = RoundLedger::new();
        let (rf, metrics) = engine_ruling_forest(
            &g,
            None,
            &subset,
            alpha,
            EngineConfig::default()
                .with_shards(8)
                .with_workers(workers)
                .with_faults(FaultPlan::new().lose_edges(7, 0.35)),
            &mut ledger,
        );
        (
            rf.roots,
            rf.parent,
            rf.root_of,
            rf.depth,
            metrics.total_lost(),
            ledger.total(),
        )
    };
    let base = run(1);
    assert!(base.4 > 0, "p = 0.35 must lose some construction traffic");
    assert_eq!(base.5, clean_ledger.total(), "loss costs no extra rounds");
    assert_ne!(
        (&base.0, &base.1),
        (&clean.roots, &clean.parent),
        "a 35% loss rate must visibly perturb the construction"
    );
    // Where both ends of a kept chain link survived the loss, the link is
    // still consistent — a lost Keep may sever a chain (the parent never
    // hears it is kept), but it can never corrupt one.
    for v in 0..g.n() {
        let p = base.1[v];
        if p != usize::MAX && p != v && base.2[p] != usize::MAX {
            assert_eq!(base.2[p], base.2[v], "vertex {v}: parent in another tree");
            assert_eq!(base.3[p] + 1, base.3[v], "vertex {v}: depth skew");
        }
    }
    for workers in [2usize, 4, 8] {
        assert_eq!(run(workers), base, "workers = {workers}");
    }
}

#[test]
fn engine_adversarial_reorder_flushes_out_arrival_order_reliance() {
    // A protocol that silently relies on arrival order: each node sends its
    // right cycle-neighbor TWO messages in one Multi outbox and the
    // receiver records the payload sequence. The stable sender sort
    // guarantees send order in clean runs; FaultPlan::reorder must scramble
    // some same-sender run — deterministically, and identically at every
    // shard and worker count.
    use engine::{EngineConfig, EngineSession, NodeCtx, NodeProgram, Outbox, Stop, WireCodec};

    #[derive(Clone, Debug, PartialEq)]
    struct Tagged(u64);
    impl WireCodec for Tagged {
        fn encode(&self, out: &mut Vec<u64>) {
            out.push(self.0);
        }
        fn decode(words: &[u64]) -> Option<Self> {
            match words {
                [w] => Some(Tagged(*w)),
                _ => None,
            }
        }
    }
    impl engine::EngineMessage for Tagged {}

    struct Burst {
        received: Vec<u64>,
        done: bool,
    }
    impl NodeProgram for Burst {
        type Message = Tagged;
        fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<Tagged> {
            Outbox::Silent
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(usize, Tagged)]) -> Outbox<Tagged> {
            if ctx.round == 1 {
                let right = *ctx.neighbors.iter().find(|&&w| w != ctx.id).unwrap();
                let right = ctx
                    .neighbors
                    .iter()
                    .copied()
                    .find(|&w| w == (ctx.id + 1) % ctx.n)
                    .unwrap_or(right);
                return Outbox::Multi(vec![
                    (right, Tagged(2 * ctx.id as u64)),
                    (right, Tagged(2 * ctx.id as u64 + 1)),
                ]);
            }
            self.received.extend(inbox.iter().map(|(_, Tagged(w))| *w));
            self.done = true;
            Outbox::Silent
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    let g = gen::cycle(16);
    let run = |faults: FaultPlan, shards: usize| {
        let config = EngineConfig::default()
            .with_shards(shards)
            .with_workers(shards)
            .with_faults(faults);
        let mut sess = EngineSession::new(&g, config, |_| Burst {
            received: Vec::new(),
            done: false,
        });
        sess.run_phase("burst", Stop::Rounds(2));
        sess.programs()
            .iter()
            .map(|p| p.received.clone())
            .collect::<Vec<_>>()
    };
    let clean = run(FaultPlan::new(), 1);
    // Clean runs deliver each burst in send order: (even, odd) pairs.
    for seq in &clean {
        assert_eq!(seq.len(), 2);
        assert_eq!(seq[0] + 1, seq[1], "send order preserved without faults");
    }
    // Some seed must flip at least one pair — 16 pairs at p = 1/2 each.
    let seed = (0..64u64)
        .find(|&s| run(FaultPlan::new().reorder(s), 1) != clean)
        .expect("some seed must permute some burst");
    let perturbed = run(FaultPlan::new().reorder(seed), 1);
    let mut flipped = 0;
    for (seq, base) in perturbed.iter().zip(&clean) {
        assert_eq!(seq.len(), 2, "reorder never loses or invents messages");
        if seq != base {
            assert_eq!(seq[0], base[1], "a flip is the only legal permutation");
            assert_eq!(seq[1], base[0]);
            flipped += 1;
        }
    }
    assert!(flipped > 0);
    for shards in [2usize, 4, 8] {
        assert_eq!(
            run(FaultPlan::new().reorder(seed), shards),
            perturbed,
            "shards = {shards}: reordered runs must replay bit-identically"
        );
    }
}

#[test]
fn engine_crash_stop_degrades_gather_deterministically() {
    // Crash a cut vertex of a path mid-flood: balls on each side stop
    // growing through it from the crash round on, the suppressed traffic
    // is counted, and the degraded run replays at any worker count.
    let g = gen::path(12);
    let centers: Vec<usize> = (0..g.n()).collect();
    let radius = 4;
    let mut clean_ledger = RoundLedger::new();
    let (clean, _) = engine_gather_balls(
        &g,
        None,
        &centers,
        radius,
        EngineConfig::default(),
        &mut clean_ledger,
    );
    let victim = 6usize;
    let run = |workers: usize| {
        let mut ledger = RoundLedger::new();
        let (balls, metrics) = engine_gather_balls(
            &g,
            None,
            &centers,
            radius,
            EngineConfig::default()
                .with_shards(4)
                .with_workers(workers)
                .with_faults(FaultPlan::new().crash(victim, 2)),
            &mut ledger,
        );
        (balls, metrics.total_dropped(), ledger.total())
    };
    let base = run(1);
    assert!(base.1 > 0, "the crashed node's outboxes must be counted");
    assert_eq!(base.2, clean_ledger.total(), "crash costs no extra rounds");
    // The victim forwarded hop-1 knowledge (round 1) but nothing after, so
    // knowledge that had to be relayed through it is missing somewhere.
    let mut shrunk = 0;
    for (v, (lossy, full)) in base.0.iter().zip(&clean).enumerate() {
        assert!(
            lossy.iter().all(|w| full.contains(w)),
            "vertex {v}: a crash cannot invent knowledge"
        );
        if lossy.len() < full.len() {
            shrunk += 1;
        }
    }
    assert!(shrunk > 0, "some ball must shrink behind the crashed cut");
    // The victim's own ball still grows from *incoming* traffic: crash
    // suppresses sends, not receipt.
    assert!(base.0[victim].len() > 1);
    for workers in [2usize, 4] {
        assert_eq!(run(workers), base, "workers = {workers}");
    }
}

#[test]
fn engine_fault_replay_is_identical_across_split_and_unlimited_modes() {
    // The acceptance contract: faults key on LOGICAL messages (applied at
    // staging, before fragmentation), so a lose/duplicate plan perturbs a
    // Split(w) run exactly like an unlimited run — same balls, same
    // lost/duplicated counts — while the split run additionally fragments.
    let g = gen::grid(9, 9);
    let centers: Vec<usize> = (0..g.n()).collect();
    let radius = 3;
    let faults = || {
        FaultPlan::new()
            .lose_edges(23, 0.2)
            .duplicate_edges(99, 0.3)
            .drop_outbox(17, 2)
    };
    let run = |config: EngineConfig| {
        let mut ledger = RoundLedger::new();
        let (balls, metrics) = engine_gather_balls(
            &g,
            None,
            &centers,
            radius,
            config.with_faults(faults()),
            &mut ledger,
        );
        (
            balls,
            metrics.total_lost(),
            metrics.total_duplicated(),
            metrics.total_dropped(),
            metrics.total_fragments(),
        )
    };
    let unlimited = run(EngineConfig::default());
    assert!(unlimited.1 > 0 && unlimited.2 > 0 && unlimited.3 > 0);
    assert_eq!(unlimited.4, 0, "no fragmentation without a split budget");
    for shards in [1usize, 2, 8] {
        let split = run(EngineConfig::default().with_shards(shards).congest_split(2));
        assert_eq!(split.0, unlimited.0, "shards={shards}: balls diverged");
        assert_eq!(split.1, unlimited.1, "shards={shards}: lost diverged");
        assert_eq!(split.2, unlimited.2, "shards={shards}: duplicated diverged");
        assert_eq!(split.3, unlimited.3, "shards={shards}: dropped diverged");
        assert!(split.4 > 0, "wide gather traffic must fragment at width 2");
    }
}

#[test]
fn engine_delayed_delivery_reactivates_frontier_skipped_target() {
    // The frontier index must treat a fault-delayed batch as traffic: an
    // `OnMessage` node skipped for the whole delay window steps again in
    // the exact round the deferred message lands — never earlier (the
    // skip is real) and never later (the delivery re-activates it).
    use engine::{Activation, EngineSession, NodeCtx, NodeProgram, Outbox, Stop};

    struct Sleeper {
        arrivals: Vec<(u64, usize)>,
        steps: Vec<u64>,
    }
    impl NodeProgram for Sleeper {
        type Message = u64;
        fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<u64> {
            if ctx.id == 0 {
                Outbox::Broadcast(7)
            } else {
                Outbox::Silent
            }
        }
        fn on_round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &[(usize, u64)]) -> Outbox<u64> {
            self.steps.push(ctx.round);
            self.arrivals
                .extend(inbox.iter().map(|&(src, _)| (ctx.round, src)));
            Outbox::Silent
        }
        fn halted(&self) -> bool {
            false
        }
        fn activation(&self) -> Activation {
            Activation::OnMessage
        }
    }

    let g = gen::path(3);
    let run = |frontier: bool, shards: usize| {
        let config = EngineConfig::default()
            .with_shards(shards)
            .with_frontier(frontier)
            .with_faults(FaultPlan::new().delay_outbox(0, 0, 3));
        let mut sess = EngineSession::new(&g, config, |_| Sleeper {
            arrivals: Vec::new(),
            steps: Vec::new(),
        });
        sess.run_phase("sleep", Stop::Rounds(6));
        let skipped = sess.metrics().total_frontier_skipped();
        let (programs, metrics, _) = sess.into_parts();
        assert_eq!(metrics.total_delayed(), 1, "the init unicast was delayed");
        let arrivals: Vec<Vec<(u64, usize)>> =
            programs.iter().map(|p| p.arrivals.clone()).collect();
        let steps: Vec<Vec<u64>> = programs.iter().map(|p| p.steps.clone()).collect();
        (arrivals, steps, skipped)
    };

    let (full_arrivals, full_steps, full_skipped) = run(false, 1);
    // The full scan steps everyone every round and sees the delayed
    // delivery land at node 1 in round 1 + 3 = 4.
    assert_eq!(full_arrivals[1], vec![(4, 0)]);
    assert_eq!(full_steps[1], vec![1, 2, 3, 4, 5, 6]);
    assert_eq!(full_skipped, 0, "full scans skip nothing");

    for shards in [1usize, 2] {
        let (arrivals, steps, skipped) = run(true, shards);
        assert_eq!(
            arrivals, full_arrivals,
            "shards={shards}: delivery rounds must match the full scan"
        );
        // The delivery round — and only it — re-activated the sleeper.
        assert_eq!(steps[0], Vec::<u64>::new(), "node 0 never hears anything");
        assert_eq!(
            steps[1],
            vec![4],
            "node 1 steps exactly in the delivery round"
        );
        assert_eq!(steps[2], Vec::<u64>::new(), "node 2 never hears anything");
        assert_eq!(skipped, 3 * 6 - 1, "every other (node, round) was skipped");
    }
}

#[test]
fn zero_and_tiny_graphs() {
    // n = 0.
    let g0 = graphs::Graph::empty(0);
    let out = list_color_sparse(
        &g0,
        &ListAssignment::uniform(0, 3),
        3,
        SparseColoringConfig::default(),
    )
    .unwrap();
    assert!(out.coloring().unwrap().colors.is_empty());
    // n = 1.
    let g1 = graphs::Graph::empty(1);
    let out = list_color_sparse(
        &g1,
        &ListAssignment::uniform(1, 3),
        3,
        SparseColoringConfig::default(),
    )
    .unwrap();
    assert_eq!(out.coloring().unwrap().colors.len(), 1);
    // Single edge.
    let g2 = graphs::Graph::from_edges(2, [(0, 1)]);
    let out = list_color_sparse(
        &g2,
        &ListAssignment::uniform(2, 3),
        3,
        SparseColoringConfig::default(),
    )
    .unwrap();
    let c = &out.coloring().unwrap().colors;
    assert_ne!(c[0], c[1]);
}
