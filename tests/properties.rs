//! Property-based tests (proptest) on the core invariants.

use distributed_coloring::{
    degree_choosable_coloring, list_color_sparse, ErtError, ListAssignment, Outcome,
    SparseColoringConfig,
};
use graphs::gen;
use local_model::{barenboim_elkin_coloring, degree_plus_one_coloring, ruling_forest, RoundLedger};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1.3 on random forest unions: always proper, always on-list,
    /// never more than d colors, never a clique (arboricity certified).
    #[test]
    fn theorem13_forest_unions(n in 20usize..150, a in 2usize..4, seed in 0u64..1000) {
        let g = gen::forest_union(n, a, seed);
        let d = 2 * a;
        let lists = ListAssignment::random(n, d, d + 3, seed);
        let outcome = list_color_sparse(&g, &lists, d, SparseColoringConfig::default()).unwrap();
        let res = outcome.coloring().expect("forest unions contain no K_{2a+1}");
        prop_assert!(graphs::is_proper(&g, &res.colors));
        for v in g.vertices() {
            prop_assert!(lists.list(v).contains(&res.colors[v]));
        }
    }

    /// Theorem 1.3 on bounded-degree graphs with d = Δ (when Δ ≥ 3 and
    /// mad ≤ Δ — always true): valid coloring or genuine K_{Δ+1}.
    #[test]
    fn theorem13_bounded_degree(n in 20usize..120, extra in 0usize..40, seed in 0u64..1000) {
        let g = gen::random_bounded_degree(n, 4, extra, seed);
        let d = g.max_degree().max(3);
        let lists = ListAssignment::uniform(n, d);
        match list_color_sparse(&g, &lists, d, SparseColoringConfig::default()).unwrap() {
            Outcome::Colored(res) => prop_assert!(graphs::is_proper(&g, &res.colors)),
            Outcome::CliqueFound { vertices, .. } => {
                prop_assert_eq!(vertices.len(), d + 1);
                prop_assert!(graphs::is_clique(&g, &vertices));
            }
        }
    }

    /// Constructive Theorem 1.1: any connected non-Gallai graph with
    /// degree lists gets colored; Gallai obstructions are genuine.
    #[test]
    fn ert_degree_choosability(n in 8usize..60, m_extra in 1usize..30, seed in 0u64..1000) {
        let g = gen::random_bounded_degree(n, 6, m_extra, seed);
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| {
            // Degree-sized lists drawn from a shifted palette per vertex.
            (0..g.degree(v).max(1)).map(|c| c + (v % 3)).collect()
        }).collect();
        match degree_choosable_coloring(&g, &lists) {
            Ok(col) => prop_assert!(graphs::is_proper_list_coloring(&g, &col, &lists)),
            Err(ErtError::GallaiObstruction { .. }) => {
                prop_assert!(graphs::is_gallai_forest(&g, None));
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Barenboim–Elkin: proper with the promised palette on arboricity-a
    /// inputs.
    #[test]
    fn barenboim_elkin_palette(n in 20usize..150, a in 1usize..4, seed in 0u64..1000) {
        let g = gen::forest_union(n, a, seed);
        let mut ledger = RoundLedger::new();
        let col = barenboim_elkin_coloring(&g, None, a, 1.0, &mut ledger);
        let palette = 3 * a + 1;
        for (u, v) in g.edges() {
            prop_assert_ne!(col[u], col[v]);
        }
        prop_assert!(col.iter().all(|&c| c < palette));
    }

    /// (Δ+1)-coloring primitive: proper, within palette, on any graph.
    #[test]
    fn degree_plus_one(n in 10usize..120, m in 10usize..200, seed in 0u64..1000) {
        let g = gen::gnm(n, m, seed);
        let mut ledger = RoundLedger::new();
        let col = degree_plus_one_coloring(&g, None, &mut ledger);
        for (u, v) in g.edges() {
            prop_assert_ne!(col[u], col[v]);
        }
        prop_assert!(g.vertices().all(|v| col[v] <= g.max_degree()));
    }

    /// Ruling forests: spacing ≥ α, depth ≤ α·⌈log₂ n⌉, subset covered.
    #[test]
    fn ruling_forest_invariants(n in 20usize..200, alpha in 2usize..8, seed in 0u64..1000) {
        let g = gen::random_tree(n, seed);
        let subset: Vec<usize> = (0..n).step_by(2).collect();
        let mut ledger = RoundLedger::new();
        let rf = ruling_forest(&g, None, &subset, alpha, &mut ledger);
        let beta = alpha * ((n as f64).log2().ceil() as usize).max(1);
        prop_assert!(rf.max_depth() <= beta);
        for &u in &subset {
            prop_assert!(rf.root_of[u] != usize::MAX, "subset vertex uncovered");
        }
        for &r in &rf.roots {
            let dist = graphs::bfs_distances(&g, r, None);
            for &s in &rf.roots {
                if s != r {
                    prop_assert!(dist[s] >= alpha, "roots too close: {} < {}", dist[s], alpha);
                }
            }
        }
    }

    /// Exact mad oracle sandwich: average degree ≤ mad ≤ max degree, and
    /// the Nash-Williams arboricity bracket 2a−2 ≤ ⌈mad⌉ ≤ 2a.
    #[test]
    fn mad_arboricity_sandwich(n in 5usize..60, m in 4usize..120, seed in 0u64..1000) {
        let g = gen::gnm(n, m, seed);
        prop_assume!(g.m() > 0);
        let mad = graphs::mad_f64(&g);
        prop_assert!(mad + 1e-9 >= g.average_degree());
        prop_assert!(mad <= g.max_degree() as f64 + 1e-9);
        let a = graphs::arboricity(&g);
        let mad_ceil = mad.ceil() as usize;
        prop_assert!(2 * a >= mad_ceil);
        prop_assert!(2 * a <= mad_ceil + 2);
    }

    /// Degeneracy coloring is proper and uses ≤ degeneracy + 1 colors;
    /// degeneracy ≤ ⌊mad⌋ always.
    #[test]
    fn degeneracy_vs_mad(n in 5usize..60, m in 4usize..120, seed in 0u64..1000) {
        let g = gen::gnm(n, m, seed);
        let deg = graphs::degeneracy_order(&g, None);
        let col = graphs::greedy_degeneracy_coloring(&g, None);
        for (u, v) in g.edges() {
            prop_assert_ne!(col[u], col[v]);
        }
        prop_assert!(col.iter().all(|&c| c <= deg.degeneracy));
        // degeneracy ≤ mad (every subgraph has a vertex of degree ≤ mad).
        prop_assert!(deg.degeneracy as f64 <= graphs::mad_f64(&g) + 1e-9);
    }

    /// Gallai recognition agrees with its definition on random block sums.
    #[test]
    fn gallai_recognition_consistency(blocks in 1usize..10, seed in 0u64..1000) {
        let cfg = gen::GallaiTreeConfig { blocks, ..Default::default() };
        let t = gen::random_gallai_tree(&cfg, seed);
        prop_assert!(graphs::is_gallai_tree(&t, None));
        if let Some(broken) = gen::break_gallai_tree(&t, seed) {
            prop_assert!(!graphs::is_gallai_tree(&broken, None));
        }
    }

    /// Blocks partition the edge set, and every block is 2-connected or an
    /// edge or an isolated vertex.
    #[test]
    fn block_decomposition_partitions_edges(n in 5usize..60, m in 4usize..120, seed in 0u64..1000) {
        let g = gen::gnm(n, m, seed);
        let d = graphs::block_decomposition(&g, None);
        let mut count = 0usize;
        for b in &d.blocks {
            for (i, &u) in b.iter().enumerate() {
                for &v in &b[i + 1..] {
                    if g.has_edge(u, v) {
                        count += 1;
                    }
                }
            }
        }
        prop_assert_eq!(count, g.m());
    }
}
