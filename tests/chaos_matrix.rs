//! The chaos matrix as integration tests: the CONGEST split-width ladder
//! must be semantically invisible to the full Theorem 1.3 pipeline, and
//! the randomized (deg+1)-list protocol must ride out a loss-rate curve up
//! to p = 0.1 and still hand back a proper coloring.
//!
//! Both tests drive the scenario lab end to end — suites declared as JSON,
//! expanded into trial plans, executed, and judged by the declared
//! invariants — so they also pin the lab's public contract: a suite string
//! in, percentile-bearing rows and check verdicts out.

use distributed_coloring::{list_color_sparse, ListAssignment, SparseColoringConfig};
use engine::{CongestMode, SPLIT_PHASE};
use lab::{evaluate, run_suite, Suite};

/// Split(w) for w ∈ {1, 2, 4, 8} on the full `list_color_sparse` pipeline:
/// identical colors at every width and shard count, with the ledger
/// reconciling to the unlimited run once the `SPLIT_PHASE` surplus is
/// subtracted. Declared as a lab suite; the determinism and
/// split-reconciliation checks do the diffing.
#[test]
fn split_width_ladder_is_bit_identical_on_the_full_pipeline() {
    let suite = Suite::from_json(
        r#"{
          "name": "split-ladder-test",
          "description": "Split(w) ladder over the full pipeline",
          "scenarios": [
            {
              "name": "ladder",
              "family": "apollonian",
              "n": 120,
              "seed": 7,
              "algorithm": "theorem13",
              "shards": [1, 2],
              "workers": "shards",
              "congest": ["unlimited", "split:1", "split:2", "split:4", "split:8"],
              "params": {"d": 6}
            }
          ],
          "checks": [
            {"kind": "determinism"},
            {"kind": "split-reconciliation"},
            {"kind": "valid-outputs"}
          ]
        }"#,
    )
    .expect("ladder suite parses");
    let run = run_suite(&suite, |_row, _total| {}).expect("ladder suite runs");
    assert_eq!(run.rows.len(), 10, "2 shard counts × 5 congest modes");
    for outcome in evaluate(&suite, &run) {
        assert!(
            outcome.passed,
            "check {} failed: {:?}",
            outcome.check, outcome.violations
        );
    }
    // Semantic invisibility, asserted directly: one output fingerprint
    // across the whole ladder, narrowing widths notwithstanding.
    let anchor = run.rows[0].output_hash;
    for row in &run.rows {
        assert_eq!(
            row.output_hash, anchor,
            "split width must never change the coloring (trial {})",
            row.spec.id
        );
    }
}

/// The same ladder off-lab, against the raw pipeline API: Split(w) colors
/// equal the unlimited colors, the surplus is the only ledger divergence,
/// and narrower widths charge at least as many physical rounds.
#[test]
fn split_width_ladder_reconciles_ledgers() {
    let g = graphs::gen::build_family("apollonian", 120, 7).expect("registered family");
    let d = 6;
    let lists = ListAssignment::uniform(g.n(), d);
    let run = |congest: CongestMode| {
        let config = SparseColoringConfig {
            engine_shards: Some(2),
            engine_congest: congest,
            ..Default::default()
        };
        list_color_sparse(&g, &lists, d, config)
            .expect("pipeline runs")
            .coloring()
            .expect("planar instance colors")
            .clone()
    };
    let unlimited = run(CongestMode::Unlimited);
    assert!(graphs::is_proper(&g, &unlimited.colors));
    let mut last_surplus = 0;
    for width in [8, 4, 2, 1] {
        let split = run(CongestMode::Split(width));
        assert_eq!(split.colors, unlimited.colors, "width {width}");
        let surplus = split.ledger.phase_total(SPLIT_PHASE);
        assert_eq!(
            split.ledger.total() - surplus,
            unlimited.ledger.total(),
            "width {width}: surplus must be the only ledger divergence"
        );
        // ⌈x/w⌉ is non-increasing in w: narrowing the budget can only add
        // physical rounds, never remove them.
        assert!(
            surplus >= last_surplus,
            "width {width}: narrowing the budget must not cut physical rounds \
             (surplus {surplus} after {last_surplus})"
        );
        last_surplus = surplus;
    }
    // The ladder must end in real fragmentation: at one word per physical
    // round, the pipeline's multi-word floods cannot fit.
    assert!(
        last_surplus > 0,
        "width 1: the pipeline's wide floods must fragment"
    );
}

/// The loss-rate curve: with slack-6 lists on random 3-regular graphs, the
/// randomized protocol terminates with a complete, proper, on-list
/// coloring at every loss rate up to p = 0.1 — for every pinned graph
/// seed, at both shard counts, bit-identically across them.
#[test]
fn loss_rate_curve_keeps_the_randomized_protocol_proper() {
    let suite = Suite::from_json(
        r#"{
          "name": "loss-curve-test",
          "description": "randomized coloring under a loss-rate curve",
          "scenarios": [
            {
              "name": "loss-curve",
              "family": "random-3-regular",
              "n": 48,
              "seed": [1, 2, 6, 8],
              "algorithm": "randomized",
              "shards": [1, 2],
              "workers": "shards",
              "faults": [
                "none",
                {"lose": {"seed": 101, "p": 0.01}},
                {"lose": {"seed": 101, "p": 0.05}},
                {"lose": {"seed": 101, "p": 0.1}}
              ],
              "params": {"list_slack": 6}
            }
          ],
          "checks": [
            {"kind": "determinism"},
            {"kind": "valid-outputs"}
          ]
        }"#,
    )
    .expect("loss-curve suite parses");
    let run = run_suite(&suite, |_row, _total| {}).expect("loss-curve suite runs");
    assert_eq!(
        run.rows.len(),
        32,
        "4 seeds × 2 shard counts × 4 loss rates"
    );
    for row in &run.rows {
        assert!(
            row.valid,
            "seed {} at {} must stay proper: {:?}",
            row.spec.seed,
            row.spec.faults.label(),
            row.invalid_reason
        );
        assert!(row.error.is_none(), "no trial may die: {:?}", row.error);
    }
    for outcome in evaluate(&suite, &run) {
        assert!(
            outcome.passed,
            "check {} failed: {:?}",
            outcome.check, outcome.violations
        );
    }
}
