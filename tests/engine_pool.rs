//! Worker-pool lifecycle: the persistent executor must survive everything a
//! session can throw at it — reuse across phases and runs, node-program
//! panics mid-round, fault injection — and never change a single observable
//! while doing so. Workers are forced past the hardware parallelism
//! (`EngineConfig::workers`) so these tests exercise real pooled threads
//! even on single-core CI runners.

use std::panic::{catch_unwind, AssertUnwindSafe};

use engine::{
    engine_randomized_list_coloring, EngineConfig, EngineSession, FaultPlan, NodeCtx, NodeProgram,
    Outbox, Stop,
};
use graphs::gen;
use local_model::RoundLedger;

/// Forwards the largest id seen so far; never volunteers to halt, so phases
/// are driven by fixed round budgets — the multi-phase reuse workload.
struct Gossip {
    best: usize,
}

impl NodeProgram for Gossip {
    type Message = usize;

    fn init(&mut self, ctx: &mut NodeCtx<'_>) -> Outbox<usize> {
        self.best = ctx.id;
        Outbox::Broadcast(ctx.id)
    }

    fn on_round(&mut self, _: &mut NodeCtx<'_>, inbox: &[(usize, usize)]) -> Outbox<usize> {
        self.best = inbox.iter().map(|&(_, m)| m).fold(self.best, usize::max);
        Outbox::Broadcast(self.best)
    }

    fn halted(&self) -> bool {
        false
    }
}

/// Panics (on one vertex) at a chosen round — the clean-shutdown workload.
struct PanicAt {
    round: u64,
    vertex: usize,
}

impl NodeProgram for PanicAt {
    type Message = usize;

    fn init(&mut self, _: &mut NodeCtx<'_>) -> Outbox<usize> {
        Outbox::Silent
    }

    fn on_round(&mut self, ctx: &mut NodeCtx<'_>, _: &[(usize, usize)]) -> Outbox<usize> {
        assert!(
            !(ctx.round == self.round && ctx.id == self.vertex),
            "injected node-program panic at round {} vertex {}",
            self.round,
            self.vertex
        );
        Outbox::Silent
    }

    fn halted(&self) -> bool {
        false
    }
}

fn gossip_session(g: &graphs::Graph, workers: usize) -> EngineSession<'_, Gossip> {
    EngineSession::new(
        g,
        EngineConfig::default().with_shards(8).with_workers(workers),
        |_| Gossip { best: 0 },
    )
}

#[test]
fn session_reuse_across_many_phases_on_one_pool() {
    // One pool, many phases and inspection points: the workers must stay
    // parked-and-ready across the whole session lifetime, and the staged
    // arenas must not leak traffic between phases.
    let g = gen::random_tree(300, 42);
    let mut pooled = gossip_session(&g, 4);
    let mut inline = gossip_session(&g, 1);
    assert_eq!(pooled.workers(), 4);
    assert_eq!(inline.workers(), 1);
    for phase in ["wave-1", "wave-2", "wave-3", "wave-4"] {
        let rp = pooled.run_phase(phase, Stop::Rounds(5));
        let ri = inline.run_phase(phase, Stop::Rounds(5));
        assert_eq!(rp.rounds, 5);
        assert_eq!(rp.messages, ri.messages, "phase {phase}");
        // Between-phase inspection: driver-side access while workers park.
        let pooled_best: Vec<usize> = pooled.programs().iter().map(|p| p.best).collect();
        let inline_best: Vec<usize> = inline.programs().iter().map(|p| p.best).collect();
        assert_eq!(pooled_best, inline_best, "phase {phase}");
    }
    assert_eq!(pooled.rounds(), 20);
    assert_eq!(
        pooled.metrics().message_counts(),
        inline.metrics().message_counts()
    );
    // The host-side seam still works with a live pool.
    pooled.for_each_program(|v, p| p.best = v);
    pooled.run_phase("wave-5", Stop::Rounds(3));
}

#[test]
fn sequential_sessions_reuse_fresh_pools_cleanly() {
    // Session-per-run (the benches' pattern): every session spawns and joins
    // its own pool; runs must not interfere.
    let g = gen::grid(12, 12);
    let mut fingerprints = Vec::new();
    for _ in 0..3 {
        let mut sess = gossip_session(&g, 3);
        sess.run_phase("wave", Stop::Rounds(8));
        let (programs, metrics, _) = sess.into_parts();
        fingerprints.push((
            programs.iter().map(|p| p.best).collect::<Vec<_>>(),
            metrics.message_counts(),
        ));
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);
}

#[test]
fn idle_sessions_shut_down_without_running_a_round() {
    // Spawned pools must join even if no phase (or nothing at all) ran.
    let g = gen::path(64);
    let sess = EngineSession::new(
        &g,
        EngineConfig::default().with_shards(8).with_workers(8),
        |_| Gossip { best: 0 },
    );
    drop(sess);
    let mut sess = EngineSession::new(
        &g,
        EngineConfig::default().with_shards(8).with_workers(8),
        |_| Gossip { best: 0 },
    );
    sess.run_phase("one", Stop::Rounds(1));
    // into_parts is the other shutdown path.
    let (_, metrics, _) = sess.into_parts();
    assert_eq!(metrics.total_rounds(), 1);
}

#[test]
fn node_program_panic_propagates_and_pool_shuts_down_cleanly() {
    let g = gen::path(200);
    for workers in [1usize, 2, 8] {
        let mut sess = EngineSession::new(
            &g,
            EngineConfig::default().with_shards(8).with_workers(workers),
            |_| PanicAt {
                round: 3,
                vertex: 137,
            },
        );
        let r = sess.run_phase("warmup", Stop::Rounds(2));
        assert_eq!(r.rounds, 2, "pre-panic rounds run normally");
        let caught = catch_unwind(AssertUnwindSafe(|| {
            sess.run_phase("doomed", Stop::AllHalted);
        }));
        let payload = caught.expect_err("round 3 must panic");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is the assert message");
        assert!(
            msg.contains("injected node-program panic"),
            "workers={workers}: panic payload must survive the pool: {msg}"
        );
        // The aborted round was rolled back, the session poisoned: state is
        // partially stepped, so reuse must refuse loudly, not replay
        // garbage. Inspection still works.
        assert!(sess.poisoned());
        assert_eq!(sess.rounds(), 2, "aborted round must not be counted");
        assert_eq!(
            sess.metrics().total_rounds(),
            2,
            "no metrics record for the aborted round"
        );
        let reuse = catch_unwind(AssertUnwindSafe(|| {
            sess.run_phase("after-poison", Stop::Rounds(1));
        }));
        let poison_msg = reuse.expect_err("poisoned session must refuse to step");
        let named = poison_msg
            .downcast_ref::<&str>()
            .map(|m| m.contains("poisoned"))
            .or_else(|| {
                poison_msg
                    .downcast_ref::<String>()
                    .map(|m| m.contains("poisoned"))
            });
        assert_eq!(
            named,
            Some(true),
            "workers={workers}: reuse must name the poisoning"
        );
        // The epoch closed before the unwind resumed: dropping the session
        // (joining the pool) must not hang or double-panic...
        drop(sess);
        // ...and the machine must be reusable afterwards.
        let mut fresh = gossip_session(&g, workers);
        let report = fresh.run_phase("recovery", Stop::Rounds(2));
        assert_eq!(report.rounds, 2, "workers={workers}");
    }
}

#[test]
fn fault_plans_are_worker_count_invariant_under_the_pool() {
    // Drop/delay faults perturb the run identically whether the executor is
    // inline or an oversubscribed pool: colorings, per-round traffic, and
    // fault tallies all replay.
    let g = gen::random_regular(400, 4, 9);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut faults = FaultPlan::new();
    for round in 1..40u64 {
        faults = faults.drop_outbox((7 * round as usize) % 400, round);
        if round % 2 == 0 {
            faults = faults.delay_outbox((13 * round as usize) % 400, round, 2);
        }
    }
    let run = |workers: usize| {
        let mut ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            9,
            10_000,
            EngineConfig::default()
                .with_shards(16)
                .with_workers(workers)
                .with_faults(faults.clone()),
            &mut ledger,
        );
        assert!(out.complete);
        (
            out.colors,
            metrics.message_counts(),
            metrics.total_dropped(),
            metrics.total_delayed(),
            ledger.total(),
        )
    };
    let baseline = run(1);
    assert!(baseline.2 > 0, "drop faults must actually fire");
    assert!(baseline.3 > 0, "delay faults must actually fire");
    assert!(graphs::is_proper(&g, &baseline.0));
    for workers in [2usize, 4, 16] {
        assert_eq!(run(workers), baseline, "workers = {workers}");
    }
}
