//! Shard-count determinism (property-based): same seed + same graph must
//! yield identical colorings AND identical per-round message counts whether
//! the engine runs on 1, 2, 8, or 16 shards. This is the engine's core
//! replay contract — randomness lives in per-node streams, never in the
//! schedule. Each sweep point forces a different worker-pool size
//! (including oversubscribed pools of real threads), so thread interleaving
//! is part of what the property quantifies over.

use engine::{
    engine_cole_vishkin_3color, engine_h_partition, engine_randomized_list_coloring, EngineConfig,
};
use graphs::{gen, VertexSet};
use local_model::{RootedForest, RoundLedger};
use proptest::prelude::*;

/// `(shards, workers)` pairs: inline, pooled, and oversubscribed pooled.
const SHARD_SWEEP: [(usize, usize); 4] = [(1, 1), (2, 2), (8, 3), (16, 16)];

fn config(shards: usize, workers: usize) -> EngineConfig {
    EngineConfig::default()
        .with_shards(shards)
        .with_workers(workers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized list coloring: colorings, cycle counts, message counts,
    /// and ledgers are identical across the shard sweep.
    #[test]
    fn randomized_coloring_shard_invariant(n in 30usize..200, d in 3usize..6, seed in 0u64..500) {
        let g = gen::random_regular(n & !1, d, seed);
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v) + 1).collect()).collect();
        let mut runs = Vec::new();
        for (shards, workers) in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (out, metrics) = engine_randomized_list_coloring(
                &g, None, &lists, seed, 1000,
                config(shards, workers),
                &mut ledger,
            );
            runs.push((out.colors, out.rounds, metrics.message_counts(), ledger.total()));
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(&runs[0], run, "sweep point {} diverged from shards=1", i);
        }
        prop_assert!(graphs::is_proper(&g, &runs[0].0));
    }

    /// Cole–Vishkin: deterministic program, so every observable — colors,
    /// rounds, per-round traffic — must survive resharding.
    #[test]
    fn cole_vishkin_shard_invariant(n in 20usize..400, seed in 0u64..500) {
        let g = gen::random_tree(n, seed);
        let f = RootedForest::new(graphs::bfs_parents(&g, 0, None));
        let mut runs = Vec::new();
        for (shards, workers) in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (colors, metrics) = engine_cole_vishkin_3color(
                &f,
                config(shards, workers),
                &mut ledger,
            );
            runs.push((colors, metrics.message_counts(), ledger.total()));
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(&runs[0], run, "sweep point {} diverged", i);
        }
    }

    /// Masked determinism (the active-set contract): a masked engine run
    /// at shards ∈ {1, 2, 8} reproduces the sequential masked primitive on
    /// colors AND ledger totals, for arbitrary seeded masks.
    #[test]
    fn masked_randomized_matches_sequential_masked_primitive(
        n in 30usize..160,
        d in 3usize..6,
        seed in 0u64..500,
        mask_seed in 0u64..64,
    ) {
        let g = gen::random_regular(n & !1, d, seed);
        let mask = VertexSet::from_iter_with_universe(
            g.n(),
            (0..g.n()).filter(|&v| !rand::mix64(mask_seed, v as u64).is_multiple_of(4)),
        );
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v) + 1).collect()).collect();
        let mut seq_ledger = local_model::RoundLedger::new();
        let seq = local_model::randomized_list_coloring(
            &g, Some(&mask), &lists, seed, 1000, &mut seq_ledger,
        );
        for (shards, workers) in [(1usize, 1usize), (2, 2), (8, 3)] {
            let mut ledger = RoundLedger::new();
            let (out, _) = engine_randomized_list_coloring(
                &g, Some(&mask), &lists, seed, 1000,
                config(shards, workers),
                &mut ledger,
            );
            prop_assert_eq!(&out.colors, &seq.colors, "shards = {}", shards);
            prop_assert_eq!(out.rounds, seq.rounds);
            prop_assert_eq!(out.complete, seq.complete);
            prop_assert_eq!(ledger.total(), seq_ledger.total(), "shards = {}", shards);
        }
        // Dead vertices never get a color; live edges stay proper.
        for v in 0..g.n() {
            if !mask.contains(v) {
                prop_assert_eq!(seq.colors[v], usize::MAX);
            }
        }
    }

    /// H-partition peeling: layers and traffic are shard-invariant.
    #[test]
    fn h_partition_shard_invariant(n in 30usize..300, a in 2usize..4, seed in 0u64..500) {
        let g = gen::forest_union(n, a, seed);
        let mut runs = Vec::new();
        for (shards, workers) in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (hp, metrics) = engine_h_partition(
                &g, None, a, 1.0,
                config(shards, workers),
                &mut ledger,
            );
            runs.push((hp.layer, hp.layers, metrics.message_counts(), ledger.total()));
        }
        for (i, run) in runs.iter().enumerate().skip(1) {
            prop_assert_eq!(&runs[0], run, "sweep point {} diverged", i);
        }
    }
}
