//! Shard-count determinism (property-based): same seed + same graph must
//! yield identical colorings AND identical per-round message counts whether
//! the engine runs on 1, 2, or 8 shards. This is the engine's core replay
//! contract — randomness lives in per-node streams, never in the schedule.

use engine::{
    engine_cole_vishkin_3color, engine_h_partition, engine_randomized_list_coloring, EngineConfig,
};
use graphs::gen;
use local_model::{RootedForest, RoundLedger};
use proptest::prelude::*;

const SHARD_SWEEP: [usize; 3] = [1, 2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized list coloring: colorings, cycle counts, message counts,
    /// and ledgers are identical across the shard sweep.
    #[test]
    fn randomized_coloring_shard_invariant(n in 30usize..200, d in 3usize..6, seed in 0u64..500) {
        let g = gen::random_regular(n & !1, d, seed);
        let lists: Vec<Vec<usize>> = g.vertices().map(|v| (0..g.degree(v) + 1).collect()).collect();
        let mut runs = Vec::new();
        for shards in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (out, metrics) = engine_randomized_list_coloring(
                &g, &lists, seed, 1000,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            runs.push((out.colors, out.rounds, metrics.message_counts(), ledger.total()));
        }
        prop_assert_eq!(&runs[0], &runs[1], "1 vs 2 shards diverged");
        prop_assert_eq!(&runs[0], &runs[2], "1 vs 8 shards diverged");
        prop_assert!(graphs::is_proper(&g, &runs[0].0));
    }

    /// Cole–Vishkin: deterministic program, so every observable — colors,
    /// rounds, per-round traffic — must survive resharding.
    #[test]
    fn cole_vishkin_shard_invariant(n in 20usize..400, seed in 0u64..500) {
        let g = gen::random_tree(n, seed);
        let f = RootedForest::new(graphs::bfs_parents(&g, 0, None));
        let mut runs = Vec::new();
        for shards in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (colors, metrics) = engine_cole_vishkin_3color(
                &f,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            runs.push((colors, metrics.message_counts(), ledger.total()));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }

    /// H-partition peeling: layers and traffic are shard-invariant.
    #[test]
    fn h_partition_shard_invariant(n in 30usize..300, a in 2usize..4, seed in 0u64..500) {
        let g = gen::forest_union(n, a, seed);
        let mut runs = Vec::new();
        for shards in SHARD_SWEEP {
            let mut ledger = RoundLedger::new();
            let (hp, metrics) = engine_h_partition(
                &g, a, 1.0,
                EngineConfig::default().with_shards(shards),
                &mut ledger,
            );
            runs.push((hp.layer, hp.layers, metrics.message_counts(), ledger.total()));
        }
        prop_assert_eq!(&runs[0], &runs[1]);
        prop_assert_eq!(&runs[0], &runs[2]);
    }
}
