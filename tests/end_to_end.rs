//! End-to-end integration tests spanning all crates: every theorem and
//! corollary of the paper exercised on realistic workloads, with results
//! cross-checked against the exact solvers.

use fewer_colors::prelude::*;
use graphs::gen;

fn assert_valid_list_coloring(g: &graphs::Graph, lists: &ListAssignment, colors: &[usize]) {
    assert!(graphs::is_proper(g, colors), "coloring not proper");
    for v in g.vertices() {
        assert!(
            lists.list(v).contains(&colors[v]),
            "vertex {v} used off-list color {}",
            colors[v]
        );
    }
}

#[test]
fn theorem13_on_every_workload_family() {
    let workloads: Vec<(graphs::Graph, usize)> = vec![
        (gen::random_tree(300, 1), 3),
        (gen::forest_union(300, 2, 2), 4),
        (gen::forest_union(300, 3, 3), 6),
        (gen::grid(17, 17), 4),
        (gen::triangular(12, 12), 6),
        (gen::hexagonal(7, 7), 3),
        (gen::apollonian(300, 4), 6),
        (gen::random_regular(300, 3, 5), 3),
        (gen::random_regular(300, 4, 6), 4),
        (gen::subdivided_triangulation(60, 7), 3),
        (gen::petersen(), 3),
        (gen::torus_grid(10, 12), 4),
    ];
    for (i, (g, d)) in workloads.into_iter().enumerate() {
        assert!(
            graphs::mad_at_most(&g, d as f64),
            "workload {i}: mad exceeds d = {d}"
        );
        let lists = ListAssignment::random(g.n(), d, 2 * d + 1, i as u64);
        let outcome = list_color_sparse(&g, &lists, d, SparseColoringConfig::default())
            .unwrap_or_else(|e| panic!("workload {i}: {e}"));
        let res = outcome
            .coloring()
            .unwrap_or_else(|| panic!("workload {i}: unexpected clique"));
        assert_valid_list_coloring(&g, &lists, &res.colors);
    }
}

#[test]
fn theorem13_all_radius_policies_agree_on_validity() {
    use distributed_coloring::RadiusPolicy;
    let g = gen::apollonian(150, 9);
    let lists = ListAssignment::uniform(g.n(), 6);
    for policy in [
        RadiusPolicy::Adaptive { initial: 1 },
        RadiusPolicy::Adaptive { initial: 4 },
        RadiusPolicy::Fixed(3),
        RadiusPolicy::Fixed(10),
        RadiusPolicy::Paper,
    ] {
        let config = SparseColoringConfig {
            radius: policy,
            ..Default::default()
        };
        let outcome = list_color_sparse(&g, &lists, 6, config).unwrap();
        let res = outcome.coloring().expect("planar: no K7");
        assert_valid_list_coloring(&g, &lists, &res.colors);
    }
}

#[test]
fn clique_outcome_is_a_real_clique() {
    // Plant a K6 inside a sparse graph and ask for d = 5.
    let mut b = graphs::GraphBuilder::new(50);
    for i in 0..6 {
        for j in i + 1..6 {
            b.add_edge(i, j);
        }
    }
    for v in 6..50 {
        b.add_edge(v - 1, v);
    }
    let g = b.build();
    let lists = ListAssignment::uniform(50, 5);
    match list_color_sparse(&g, &lists, 5, SparseColoringConfig::default()).unwrap() {
        distributed_coloring::Outcome::CliqueFound { vertices, .. } => {
            assert_eq!(vertices.len(), 6);
            assert!(graphs::is_clique(&g, &vertices));
        }
        distributed_coloring::Outcome::Colored(c) => {
            // Also legal: the theorem says "either…or" — but the planted K6
            // cannot be 5-list-colored from uniform lists, so coloring is
            // impossible here.
            panic!(
                "K6 cannot be 5-colored; got a coloring using {} colors",
                c.colors
                    .iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            );
        }
    }
}

#[test]
fn paper_workflow_planar_stack() {
    // The paper's §2 story on one graph: a planar triangulation colored
    // with 6 lists, its subdivision (girth 6) with 3 lists.
    let tri = gen::apollonian(120, 31);
    let lists6 = ListAssignment::random(tri.n(), 6, 13, 1);
    let c6 = distributed_coloring::color_planar(&tri, &lists6).unwrap();
    assert_valid_list_coloring(&tri, &lists6, &c6);

    let sub = gen::subdivide_all_edges(&tri);
    assert!(graphs::girth(&sub, None).unwrap() >= 6);
    let lists3 = ListAssignment::random(sub.n(), 3, 7, 2);
    let c3 = distributed_coloring::color_planar_girth6(&sub, &lists3).unwrap();
    assert_valid_list_coloring(&sub, &lists3, &c3);
}

#[test]
fn brooks_pipeline_against_exact_solver() {
    // On small graphs, whenever our Brooks-type algorithm claims
    // "no coloring exists", the exact solver must agree.
    for seed in 0..6u64 {
        let g = gen::random_regular(12, 3, seed);
        let lists = ListAssignment::random(12, 3, 5, seed);
        match brooks_list_coloring(&g, &lists) {
            Ok((colors, _)) => assert_valid_list_coloring(&g, &lists, &colors),
            Err(distributed_coloring::BrooksError::NoColoringExists { component }) => {
                let sub = graphs::InducedSubgraph::new(&g, component.iter().copied());
                let sub_lists: Vec<Vec<usize>> = sub
                    .parent_vertices()
                    .iter()
                    .map(|&p| lists.list(p).to_vec())
                    .collect();
                assert!(
                    graphs::list_coloring(sub.graph(), &sub_lists).is_none(),
                    "seed {seed}: certificate contradicted by exact solver"
                );
            }
            Err(e) => panic!("seed {seed}: unexpected {e}"),
        }
    }
}

#[test]
fn nice_lists_stress_across_structures() {
    for seed in 0..5u64 {
        let base = gen::random_bounded_degree(80, 5, 30, seed);
        // deg+1 lists are always nice.
        let lists = ListAssignment::new(
            base.vertices()
                .map(|v| (0..=base.degree(v)).collect())
                .collect(),
        );
        let (colors, _) = nice_list_coloring(&base, &lists).unwrap();
        assert_valid_list_coloring(&base, &lists, &colors);
    }
}

#[test]
fn arboricity_corollary_and_baseline_coexist() {
    let a = 3usize;
    let g = gen::forest_union(200, a, 77);
    // Paper: 2a = 6 colors.
    let lists = ListAssignment::uniform(200, 2 * a);
    let ours = color_by_arboricity(&g, &lists, a).unwrap();
    assert_valid_list_coloring(&g, &lists, &ours);
    // Baseline: ⌊3a⌋+1 = 10 colors.
    let mut ledger = RoundLedger::new();
    let be = barenboim_elkin_coloring(&g, None, a, 1.0, &mut ledger);
    assert!(graphs::is_proper(&g, &be));
    let be_distinct = be.iter().collect::<std::collections::BTreeSet<_>>().len();
    let our_distinct = ours.iter().collect::<std::collections::BTreeSet<_>>().len();
    assert!(our_distinct <= 2 * a);
    assert!(be_distinct <= 3 * a + 1);
}

#[test]
fn lower_bound_constructions_certified() {
    // Theorem 1.5 witness: 5-chromatic, 6-regular, locally planar.
    let hard = lower_bounds::locally_planar_5chromatic(3);
    assert!(graphs::k_coloring(&hard, 4).is_none());
    assert!(hard.is_regular(6));
    // Klein grid (Theorem 2.6): 4-chromatic, locally a planar grid.
    let kg = graphs::gen::klein_grid(7, 7);
    assert_eq!(graphs::chromatic_number(&kg), 4);
    assert!(lower_bounds::balls_match(
        &kg,
        3 * 7 + 3,
        &graphs::gen::grid(7, 7),
        3 * 7 + 3,
        2
    ));
    // H_{2l} (Theorem 2.5): 3-chromatic planar triangle-free.
    let h = lower_bounds::h_graph(3);
    assert!(graphs::is_triangle_free(&h, None));
    assert_eq!(graphs::chromatic_number(&h), 3);
}

#[test]
fn the_colored_graph_respects_round_ledger_shape() {
    // Rounds must grow polylog-ish: compare n = 128 vs n = 2048 on the
    // same family and require less than linear growth.
    let small = gen::forest_union(128, 2, 3);
    let large = gen::forest_union(2048, 2, 3);
    let rs = list_color_sparse(
        &small,
        &ListAssignment::uniform(128, 4),
        4,
        SparseColoringConfig::default(),
    )
    .unwrap();
    let rl = list_color_sparse(
        &large,
        &ListAssignment::uniform(2048, 4),
        4,
        SparseColoringConfig::default(),
    )
    .unwrap();
    let (rs, rl) = (
        rs.coloring().unwrap().ledger.total(),
        rl.coloring().unwrap().ledger.total(),
    );
    // 16x more vertices must cost far less than 16x more rounds.
    assert!(
        rl < rs * 8,
        "rounds grew near-linearly: {rs} -> {rl} for 16x vertices"
    );
}
