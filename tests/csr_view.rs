//! CSR adjacency vs the adjacency the rest of the stack iterates.
//!
//! The engine's hot path reads neighbor lists out of flat CSR buffers: the
//! graph's own `offsets`/`packed` pair for whole-graph sessions, and
//! `GraphView`'s compacted live-vertex CSR for masked sessions. Both must be
//! **order-identical** to the reference adjacency — `Graph::neighbors`
//! filtered by the mask — because inbox order, RNG-free tie-breaks, and the
//! LOCAL-model port numbering all key off neighbor list order. A layout
//! refactor that reorders a single row would silently change colorings.
//!
//! Property-tested over every family in the `gen` registry, with masks of
//! varying density (including empty and full).

use engine::GraphView;
use graphs::{gen, VertexSet};
use proptest::prelude::*;
use rand::mix64;

/// The reference adjacency: the graph's own rows, mask-filtered, order
/// preserved.
fn filtered(g: &graphs::Graph, v: usize, mask: &VertexSet) -> Vec<usize> {
    g.neighbors(v)
        .iter()
        .copied()
        .filter(|&w| mask.contains(w))
        .collect()
}

/// A deterministic pseudo-random mask keeping roughly `keep_of_4 / 4` of
/// the vertices.
fn random_mask(n: usize, seed: u64, keep_of_4: u64) -> VertexSet {
    VertexSet::from_iter_with_universe(n, (0..n).filter(|&v| mix64(seed, v as u64) % 4 < keep_of_4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whole-graph views answer straight from the graph's CSR: identity on
    /// every row of every registry family.
    #[test]
    fn whole_view_rows_are_identical(n in 8usize..160, seed in 0u64..500) {
        for name in gen::family_names() {
            let g = gen::build_family(name, n, seed).unwrap();
            let view = GraphView::whole(&g);
            prop_assert_eq!(view.live_count(), g.n());
            for dv in 0..g.n() {
                prop_assert_eq!(
                    view.neighbors(dv), g.neighbors(dv),
                    "{}: whole-view row {} diverges", name, dv
                );
            }
        }
    }

    /// Masked views' compacted CSR rows equal the mask-filtered reference
    /// adjacency, element for element, on every registry family.
    #[test]
    fn masked_view_rows_match_filtered_adjacency(
        n in 8usize..160,
        seed in 0u64..500,
        keep_of_4 in 1u64..=4,
    ) {
        for name in gen::family_names() {
            let g = gen::build_family(name, n, seed).unwrap();
            let mask = random_mask(g.n(), seed ^ 0xc5, keep_of_4);
            let view = GraphView::masked(&g, &mask);
            prop_assert_eq!(view.live_count(), mask.iter().count());
            for (dv, &v) in view.live().iter().enumerate() {
                let expect = filtered(&g, v, &mask);
                prop_assert_eq!(
                    view.neighbors(dv), &expect[..],
                    "{}: masked row for original vertex {} diverges", name, v
                );
            }
        }
    }
}

#[test]
fn empty_and_full_masks_are_the_degenerate_rows() {
    for name in gen::family_names() {
        let g = gen::build_family(name, 40, 3).unwrap();
        let empty = VertexSet::new(g.n());
        assert_eq!(GraphView::masked(&g, &empty).live_count(), 0, "{name}");
        let full = VertexSet::from_iter_with_universe(g.n(), 0..g.n());
        let view = GraphView::masked(&g, &full);
        for dv in 0..g.n() {
            assert_eq!(view.neighbors(dv), g.neighbors(dv), "{name}: row {dv}");
        }
    }
}
