//! Corollaries 2.1 and 2.3: Brooks-type Δ-list-coloring and the planar
//! class ladder (6 / 4 / 3 colors by girth).
//!
//! ```sh
//! cargo run --release --example brooks_and_planar_classes
//! ```

use fewer_colors::prelude::*;

fn distinct(colors: &[usize]) -> usize {
    colors
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

fn main() {
    // --- Corollary 2.3: the planar ladder -------------------------------
    println!("Corollary 2.3 — planar classes:");

    // (1) Any planar graph: 6 lists.
    let tri = graphs::gen::triangular(12, 12);
    let lists6 = ListAssignment::random(tri.n(), 6, 18, 3);
    let c1 = color_planar(&tri, &lists6).unwrap();
    println!(
        "  triangular lattice  n={:>4}  6-list-coloring  → {} colors used",
        tri.n(),
        distinct(&c1)
    );

    // (2) Triangle-free planar: 4 lists.
    let grid = graphs::gen::perforated_grid(14, 14, 20, 9);
    let lists4 = ListAssignment::random(grid.n(), 4, 9, 4);
    let c2 = color_planar_triangle_free(&grid, &lists4).unwrap();
    println!(
        "  perforated grid     n={:>4}  4-list-coloring  → {} colors used",
        grid.n(),
        distinct(&c2)
    );

    // (3) Girth ≥ 6 planar: 3 lists.
    let hex = graphs::gen::hexagonal(6, 8);
    let lists3 = ListAssignment::random(hex.n(), 3, 7, 5);
    let c3 = color_planar_girth6(&hex, &lists3).unwrap();
    println!(
        "  hexagonal lattice   n={:>4}  3-list-coloring  → {} colors used",
        hex.n(),
        distinct(&c3)
    );

    // --- Corollary 2.1: Brooks-type Δ-list-coloring ---------------------
    println!("\nCorollary 2.1 — Δ-list-coloring (Δ ≥ 3, or a certificate):");
    for (d, seed) in [(3usize, 1u64), (4, 2), (5, 3)] {
        let g = graphs::gen::random_regular(120, d, seed);
        let lists = ListAssignment::random(g.n(), d, 2 * d, seed);
        match brooks_list_coloring(&g, &lists) {
            Ok((colors, ledger)) => {
                assert!(graphs::is_proper(&g, &colors));
                println!(
                    "  {d}-regular n=120: Δ-list-colored with Δ={d} lists ({} rounds)",
                    ledger.total()
                );
            }
            Err(e) => println!("  {d}-regular n=120: {e}"),
        }
    }

    // The negative certificate: K5 with identical 4-lists.
    let k5 = graphs::gen::complete(5);
    let lists = ListAssignment::uniform(5, 4);
    match brooks_list_coloring(&k5, &lists) {
        Err(e) => println!("  K5 with uniform 4-lists: {e}"),
        Ok(_) => unreachable!("K5 is not 4-colorable"),
    }

    // --- Theorem 6.1: nice lists with varying sizes ---------------------
    println!("\nTheorem 6.1 — nice lists (per-vertex sizes):");
    let cat = graphs::gen::caterpillar(30, 3);
    let nice = ListAssignment::new(
        cat.vertices()
            .map(|v| (0..=cat.degree(v)).collect())
            .collect(),
    );
    let (colors, ledger) = nice_list_coloring(&cat, &nice).unwrap();
    assert!(graphs::is_proper(&cat, &colors));
    println!(
        "  caterpillar n={}: colored from deg+1 lists in {} rounds",
        cat.n(),
        ledger.total()
    );
}
