//! Corollary 1.4 vs the Barenboim–Elkin baseline: fewer colors, more
//! rounds — the paper's headline trade-off, measured.
//!
//! On graphs of arboricity `a`, BE uses `⌊(2+ε)a⌋ + 1` colors in
//! `O(a log n)` rounds; the paper's algorithm uses `2a` colors in
//! `O(a⁴ log³ n)` rounds. This example runs both on the same workloads.
//!
//! ```sh
//! cargo run --release --example arboricity_showdown
//! ```

use fewer_colors::prelude::*;

fn distinct(colors: &[usize]) -> usize {
    colors
        .iter()
        .filter(|&&c| c != usize::MAX)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
}

fn main() {
    println!(
        "{:>5} {:>3} {:>12} {:>9} {:>12} {:>9}   winner",
        "n", "a", "BE colors", "BE rnds", "ours colors", "our rnds"
    );
    for a in [2usize, 3, 4] {
        for n in [200usize, 400, 800] {
            let g = graphs::gen::forest_union(n, a, (a * n) as u64);

            // Baseline: Barenboim–Elkin with epsilon = 1 → 3a + 1 colors.
            let mut be_ledger = RoundLedger::new();
            let be = barenboim_elkin_coloring(&g, None, a, 1.0, &mut be_ledger);
            assert!(graphs::is_proper(&g, &be));

            // Paper: 2a-list-coloring (Corollary 1.4).
            let lists = ListAssignment::uniform(n, 2 * a);
            let outcome =
                list_color_sparse(&g, &lists, 2 * a, SparseColoringConfig::default()).unwrap();
            let ours = outcome.coloring().unwrap();

            println!(
                "{:>5} {:>3} {:>12} {:>9} {:>12} {:>9}   {}",
                n,
                a,
                distinct(&be),
                be_ledger.total(),
                distinct(&ours.colors),
                ours.ledger.total(),
                if distinct(&ours.colors) < distinct(&be) {
                    "fewer colors (paper wins colors)"
                } else {
                    "tie"
                }
            );
        }
    }
    println!("\npalette guarantees: BE ≤ 3a+1, paper ≤ 2a — the paper saves ≥ a colors.");
}
