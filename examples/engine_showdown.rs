//! Engine showdown: the same algorithms as sequential simulations and as
//! genuine message-passing programs on the sharded runtime.
//!
//! ```sh
//! cargo run --release --example engine_showdown
//! ```
//!
//! Four demonstrations:
//! 1. **Equivalence** — engine runs reproduce the sequential colorings and
//!    ledger totals bit-for-bit.
//! 2. **Observability** — the engine reports what the ledger cannot see:
//!    per-round messages, message widths, active-node decay, wall and
//!    routing-phase time.
//! 3. **Fault injection** — drop a node's outbox and watch the degradation,
//!    deterministically.
//! 4. **Masked sessions** — run only an induced residual subgraph, exactly
//!    as Theorem 1.3's peel loop does, and replay the sequential masked
//!    primitive bit for bit.
//! 5. **Theorem 1.3, end to end on the engine** — `list_color_sparse` with
//!    `engine_shards` runs *every* phase (classification gathers, clique
//!    detection, ruling forests, per-level coloring, layered greedy) as
//!    masked engine sessions, with the per-phase round ledger to prove it.
//! 6. **CONGEST splitting** — the same pipeline under
//!    `CongestMode::Split(4)`: wide flood messages cross the wire as
//!    4-word fragments, outputs stay bit-identical, and the extra physical
//!    rounds are charged honestly under the `congest-split` ledger phase.

use fewer_colors::prelude::*;
use graphs::{gen, VertexSet};
use local_model::{h_partition, randomized_list_coloring};

fn main() {
    equivalence_demo();
    observability_demo();
    fault_demo();
    masked_demo();
    theorem13_demo();
    congest_split_demo();
}

fn equivalence_demo() {
    println!("== 1. equivalence: engine replays the sequential runs ==");
    let n = 5_000;
    let g = gen::random_regular(n, 4, 21);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();

    let mut seq_ledger = RoundLedger::new();
    let seq = randomized_list_coloring(&g, None, &lists, 21, 10_000, &mut seq_ledger);

    for shards in [1usize, 4, 8] {
        let mut eng_ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            None,
            &lists,
            21,
            10_000,
            EngineConfig::default().with_shards(shards),
            &mut eng_ledger,
        );
        assert_eq!(out.colors, seq.colors);
        assert_eq!(eng_ledger.total(), seq_ledger.total());
        println!(
            "  randomized, n={n}, {shards} shard(s): {} cycles, {} messages, {:.2} ms — identical coloring",
            out.rounds,
            metrics.total_messages(),
            metrics.total_wall().as_secs_f64() * 1e3,
        );
    }
}

fn observability_demo() {
    println!("\n== 2. observability: what a run actually did ==");
    let g = gen::forest_union(2_000, 2, 9);
    let mut ledger = RoundLedger::new();
    let (hp, metrics) = engine_h_partition(
        &g,
        None,
        2,
        1.0,
        EngineConfig::default().with_shards(4),
        &mut ledger,
    );
    println!(
        "  H-partition of a 2-forest union (n = {}): {} layers, threshold {}",
        g.n(),
        hp.layers,
        hp.threshold
    );
    println!("{metrics}");
    println!("{ledger}");
    // Sequential twin agrees layer by layer:
    let mut seq_ledger = RoundLedger::new();
    let seq = h_partition(&g, None, 2, 1.0, &mut seq_ledger);
    assert_eq!(seq.layer, hp.layer);
    println!("  (sequential twin assigns identical layers)");
}

fn fault_demo() {
    println!("== 3. fault injection: deterministic perturbation ==");
    let g = gen::cycle(24);
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut faults = FaultPlan::new();
    for resolve_round in (2..100u64).step_by(2) {
        faults = faults.drop_outbox(0, resolve_round);
    }
    let mut ledger = RoundLedger::new();
    let (out, metrics) = engine_randomized_list_coloring(
        &g,
        None,
        &lists,
        42,
        500,
        EngineConfig::default().with_faults(faults),
        &mut ledger,
    );
    let improper: Vec<(usize, usize)> = g
        .edges()
        .filter(|&(u, v)| out.colors[u] != usize::MAX && out.colors[u] == out.colors[v])
        .collect();
    println!(
        "  dropped {} message(s) of node 0's commit announcements on a 24-cycle",
        metrics.total_dropped()
    );
    println!(
        "  resulting coloring: complete = {}, improper edges at the victim: {improper:?}",
        out.complete
    );
    println!(
        "  (rerunning reproduces exactly this damage — faults are part of the replayable config)"
    );
}

fn masked_demo() {
    println!("\n== 4. masked sessions: engine runs on an induced residual subgraph ==");
    let g = gen::grid(30, 30);
    // A synthetic "peeled" residual: two thirds of the vertices survive.
    let mask = VertexSet::from_iter_with_universe(g.n(), (0..g.n()).filter(|v| v % 3 != 0));
    let lists: Vec<Vec<usize>> = g
        .vertices()
        .map(|v| (0..g.degree(v) + 1).collect())
        .collect();
    let mut seq_ledger = RoundLedger::new();
    let seq = randomized_list_coloring(&g, Some(&mask), &lists, 7, 10_000, &mut seq_ledger);
    for shards in [1usize, 4] {
        let mut ledger = RoundLedger::new();
        let (out, metrics) = engine_randomized_list_coloring(
            &g,
            Some(&mask),
            &lists,
            7,
            10_000,
            EngineConfig::default().with_shards(shards),
            &mut ledger,
        );
        assert_eq!(out.colors, seq.colors);
        assert_eq!(ledger.total(), seq_ledger.total());
        println!(
            "  masked randomized, {} of {} vertices live, {shards} shard(s): {} cycles, \
             {} messages, routing {:.2} of {:.2} ms — identical to the sequential masked run",
            mask.len(),
            g.n(),
            out.rounds,
            metrics.total_messages(),
            metrics.total_route_wall().as_secs_f64() * 1e3,
            metrics.total_wall().as_secs_f64() * 1e3,
        );
    }
    // The (d+1)-coloring Theorem 1.3 runs per level, on the same mask:
    let mut ledger = RoundLedger::new();
    let (col, _) = engine_degree_plus_one_coloring(
        &g,
        Some(&mask),
        EngineConfig::default().with_shards(4),
        &mut ledger,
    );
    let used = col.iter().filter(|&&c| c != usize::MAX).max().unwrap() + 1;
    println!(
        "  masked (d+1)-coloring of the residual: {used} colors, {} LOCAL rounds charged",
        ledger.total()
    );
}

fn theorem13_demo() {
    println!("\n== 5. Theorem 1.3, every phase on the engine ==");
    let g = gen::apollonian(400, 7);
    let d = 6; // planar triangulation: mad < 6
    let lists = ListAssignment::uniform(g.n(), d);

    let seq = list_color_sparse(&g, &lists, d, SparseColoringConfig::default())
        .expect("sequential run succeeds");
    let seq = seq.coloring().expect("planar instance is 6-list-colorable");

    for shards in [1usize, 4, 8] {
        let config = SparseColoringConfig {
            engine_shards: Some(shards),
            ..Default::default()
        };
        let eng = list_color_sparse(&g, &lists, d, config).expect("engine run succeeds");
        let eng = eng.coloring().expect("same workload");
        assert_eq!(eng.colors, seq.colors, "engine replays the coloring");
        assert_eq!(eng.ledger.total(), seq.ledger.total());
        println!(
            "  engine mode, {shards} shard(s): {} peeling levels, {} LOCAL rounds — \
             colors and ledger identical to the sequential run",
            eng.stats.levels(),
            eng.ledger.total(),
        );
    }

    // The per-phase split: every one of these phases now *executes* as a
    // masked engine session when engine_shards is set — classification
    // (rich-poor + ball-gather), clique detection when stuck, ruling
    // forests, per-level (d+1)-coloring, and the layered greedy.
    let config = SparseColoringConfig {
        engine_shards: Some(4),
        ..Default::default()
    };
    let eng = list_color_sparse(&g, &lists, d, config).expect("engine run succeeds");
    let eng = eng.coloring().expect("same workload");
    println!("\n  per-phase ledger split of the 4-shard engine run:");
    for (phase, rounds) in eng.ledger.summary() {
        println!("    {phase:<24} {rounds}");
    }
}

fn congest_split_demo() {
    println!("\n== 6. CONGEST splitting: the pipeline under a 4-word budget ==");
    let g = gen::apollonian(400, 7);
    let d = 6;
    let lists = ListAssignment::uniform(g.n(), d);

    let unlimited = list_color_sparse(
        &g,
        &lists,
        d,
        SparseColoringConfig {
            engine_shards: Some(4),
            ..Default::default()
        },
    )
    .expect("unlimited run succeeds");
    let unlimited = unlimited.coloring().expect("colorable workload");

    let split = list_color_sparse(
        &g,
        &lists,
        d,
        SparseColoringConfig {
            engine_shards: Some(4),
            engine_congest: CongestMode::Split(4),
            ..Default::default()
        },
    )
    .expect("split run succeeds");
    let split = split.coloring().expect("colorable workload");

    assert_eq!(
        split.colors, unlimited.colors,
        "splitting is never semantic"
    );
    let surplus = split.ledger.phase_total(engine::SPLIT_PHASE);
    let m = &split.engine_metrics;
    println!(
        "  unlimited: {} LOCAL rounds, widest message {} words",
        unlimited.ledger.total(),
        unlimited.engine_metrics.max_width(),
    );
    println!(
        "  Split(4):  same colors, {} fragments shipped, +{surplus} physical rounds \
         charged to '{}' ({} logical + {surplus} = {} physical)",
        m.total_fragments(),
        engine::SPLIT_PHASE,
        m.total_rounds(),
        m.total_physical_rounds(),
    );
    assert_eq!(
        split.ledger.total() - surplus,
        unlimited.ledger.total(),
        "split ledgers reconcile against the unlimited charge"
    );
}
