//! Quickstart: 6-list-color a planar graph with the PODC'18 algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fewer_colors::prelude::*;

fn main() -> Result<(), ColoringError> {
    // A random planar triangulation on 500 vertices (mad < 6 by planarity).
    let g = graphs::gen::apollonian(500, 42);
    println!(
        "graph: n = {}, m = {}, mad = {:.3}",
        g.n(),
        g.m(),
        graphs::mad_f64(&g)
    );

    // Every vertex gets its own list of 6 colors from a palette of 12 —
    // the list-coloring setting of Corollary 2.3(1).
    let lists = ListAssignment::random(g.n(), 6, 12, 7);

    let outcome = list_color_sparse(&g, &lists, 6, SparseColoringConfig::default())?;
    let result = outcome.coloring().expect("planar graphs contain no K7");

    // Validate and report.
    assert!(graphs::is_proper(&g, &result.colors));
    for v in g.vertices() {
        assert!(lists.list(v).contains(&result.colors[v]));
    }
    let used: std::collections::BTreeSet<_> = result.colors.iter().collect();
    println!(
        "proper list-coloring found: {} distinct colors on {} vertices",
        used.len(),
        g.n()
    );
    println!(
        "peeling levels: {}, happy fractions: {:?}",
        result.stats.levels(),
        result
            .stats
            .happy_fractions()
            .iter()
            .map(|f| format!("{f:.2}"))
            .collect::<Vec<_>>()
    );
    println!("{}", result.ledger);
    Ok(())
}
