//! The scenario lab in one file: declare a three-scenario suite as JSON,
//! expand it into a deterministic trial plan, execute it, render the
//! percentile summary, and judge the declared invariants — the same path
//! `cargo run -p lab --bin lab -- run suites/smoke.json` takes, minus the
//! files.
//!
//! ```sh
//! cargo run --release --example lab_quickstart
//! ```

use lab::{evaluate, expand, render_summary, run_suite, Suite};

const SUITE: &str = r#"{
  "name": "quickstart",
  "description": "one flood, one chaos curve, one full pipeline",
  "scenarios": [
    {
      "name": "gather-ladder",
      "family": "grid",
      "n": 64,
      "seed": 7,
      "algorithm": "gather",
      "shards": [0, 1, 2],
      "workers": "shards",
      "congest": ["unlimited", "split:4"],
      "reps": 3,
      "params": {"radius": 3}
    },
    {
      "name": "lossy-coloring",
      "family": "random-3-regular",
      "n": 48,
      "seed": [1, 2],
      "algorithm": "randomized",
      "shards": [1, 2],
      "workers": "shards",
      "faults": ["none", {"lose": {"seed": 101, "p": 0.1}}],
      "params": {"list_slack": 6}
    },
    {
      "name": "pipeline",
      "family": "apollonian",
      "n": 80,
      "seed": 7,
      "algorithm": "theorem13",
      "shards": [0, 1, 2],
      "workers": "shards",
      "params": {"d": 6}
    }
  ],
  "checks": [
    {"kind": "determinism"},
    {"kind": "valid-outputs"},
    {"kind": "budget", "metric": "route-frac", "max": 0.9}
  ]
}"#;

fn main() {
    let suite = Suite::from_json(SUITE).expect("quickstart suite parses");

    // The plan is pure data: every trial's axes and derived seeds, before
    // anything runs. Same suite, same plan, every time.
    let plan = expand(&suite).expect("suite expands");
    println!("suite {:?}: {} trials planned", suite.name, plan.len());
    for spec in plan.iter().take(3) {
        println!(
            "  trial {}: {} {} n={} shards={} {} {}",
            spec.id,
            spec.scenario,
            spec.algorithm,
            spec.n,
            spec.shards,
            spec.congest.label(),
            spec.faults.label(),
        );
    }
    println!("  …");

    let run = run_suite(&suite, |row, total| {
        if row.spec.id % 10 == 0 {
            println!("  [{:>2}/{total}] {}…", row.spec.id + 1, row.spec.scenario);
        }
    })
    .expect("suite runs");

    // The summary carries tail statistics per scenario — p50/p95/p99 wall
    // and route fractions, not just best-of means.
    let summary = render_summary(&run);
    let scenarios = summary
        .get("scenarios")
        .and_then(|s| s.as_arr())
        .expect("summary lists scenarios");
    println!("\nper-scenario tails:");
    for scenario in scenarios {
        let name = scenario.get("scenario").and_then(|v| v.as_str()).unwrap();
        let p50 = scenario.get("wall_ms_p50").and_then(|v| v.as_f64());
        let p95 = scenario.get("wall_ms_p95").and_then(|v| v.as_f64());
        let p99 = scenario.get("wall_ms_p99").and_then(|v| v.as_f64());
        let route = scenario.get("route_frac_p50").and_then(|v| v.as_f64());
        let (p50, p95, p99) = (p50.unwrap(), p95.unwrap(), p99.unwrap());
        assert!(
            p50 <= p95 && p95 <= p99,
            "{name}: percentiles must be ordered"
        );
        println!(
            "  {name}: wall p50 {p50:.2} ms, p95 {p95:.2} ms, p99 {p99:.2} ms, \
             route frac p50 {:.2}",
            route.unwrap_or(0.0)
        );
    }

    println!("\ndeclared invariants:");
    let mut all_passed = true;
    for outcome in evaluate(&suite, &run) {
        println!(
            "  {} — {}",
            outcome.check,
            if outcome.passed { "ok" } else { "FAILED" }
        );
        for v in &outcome.violations {
            println!("      {v}");
        }
        all_passed &= outcome.passed;
    }
    assert!(all_passed, "quickstart invariants must hold");
    println!(
        "\n{} trials, every declared invariant holds",
        run.rows.len()
    );
}
