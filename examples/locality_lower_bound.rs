//! Observation 2.4 in action: why no `o(n)`-round algorithm can 4-color
//! planar graphs (Theorem 1.5) or 3-color planar triangle-free graphs
//! (Theorem 2.5).
//!
//! For each "hard" construction we print its exact chromatic number, the
//! planar twin's chromatic number, and the radius up to which their balls
//! are indistinguishable — the window in which any LOCAL algorithm must
//! behave identically on both.
//!
//! ```sh
//! cargo run --release --example locality_lower_bound
//! ```

use graphs::gen::klein_grid;
use lower_bounds::{
    cycle_power3, h_graph, indistinguishability_radius, locally_planar_5chromatic, path_power3,
};

fn main() {
    println!("Theorem 1.5: locally planar toroidal triangulations vs planar strips");
    println!(
        "{:>4} {:>6} {:>9} {:>9} {:>12}",
        "k", "n", "χ(hard)", "χ(easy)", "match radius"
    );
    for k in [2usize, 3, 4] {
        let hard = locally_planar_5chromatic(k);
        let n = hard.n();
        let easy = path_power3(n);
        let r = indistinguishability_radius(&hard, 0, &easy, n / 2, 6).unwrap_or(0);
        let chi_hard = graphs::chromatic_number(&hard);
        let chi_easy = graphs::chromatic_number(&easy);
        println!("{k:>4} {n:>6} {chi_hard:>9} {chi_easy:>9} {r:>12}");
        assert_eq!(chi_hard, 5);
        assert_eq!(chi_easy, 4);
    }
    println!("→ a 4-coloring algorithm running within the match radius would");
    println!("  properly 4-color a 5-chromatic graph: contradiction.\n");

    println!("Theorem 2.5: Klein-bottle grids vs planar triangle-free H_2l");
    println!(
        "{:>4} {:>6} {:>9} {:>9} {:>12}",
        "l", "n", "χ(G_5,2l+1)", "χ(H_2l)", "match radius"
    );
    for l in [2usize, 3, 4] {
        let hard = klein_grid(5, 2 * l + 1);
        let easy = h_graph(l);
        let hard_root = 2 * (2 * l + 1) + l;
        let easy_root = 2 * (2 * l) + l;
        let r = indistinguishability_radius(&hard, hard_root, &easy, easy_root, 5).unwrap_or(0);
        println!(
            "{l:>4} {:>6} {:>9} {:>9} {r:>12}",
            hard.n(),
            graphs::chromatic_number(&hard),
            graphs::chromatic_number(&easy)
        );
    }
    println!("→ 3-coloring planar triangle-free graphs needs Ω(n) rounds.\n");

    println!("Theorem 2.6: odd Klein grids vs the bipartite planar grid");
    for k in [5usize, 7] {
        let hard = klein_grid(k, k);
        let easy = graphs::gen::grid(k, k);
        let center = (k / 2) * k + k / 2;
        let r = indistinguishability_radius(&hard, center, &easy, center, k / 2 + 1).unwrap_or(0);
        println!(
            "  G_{{{k},{k}}}: χ = {} vs grid χ = {}; interior balls match to radius {r} (≈ k/2)",
            graphs::chromatic_number(&hard),
            graphs::chromatic_number(&easy),
        );
    }
    println!("→ 3-coloring the √n × √n grid needs Ω(√n) rounds.");

    println!("\nCycle powers certify the Theorem 1.5 family at any size:");
    for n in [33usize, 45] {
        let c = cycle_power3(n);
        println!(
            "  C_{n}(1,2,3): χ = {} (n ≡ {} mod 4)",
            graphs::chromatic_number(&c),
            n % 4
        );
    }
}
